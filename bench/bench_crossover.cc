// E10 -- the paper's headline claim: Count-Sketch beats SAMPLING for
// Zipf parameters below 1 (Section 4.1 / Table 1); locate the crossover.
//
// At equal space, sweep z finely around 1 and report each algorithm's
// recall of the true top-k plus the minimal-space ratio from the analytic
// Table 1 formulas.
//
// Expected shape: at small budgets, Count-Sketch's recall advantage over
// SAMPLING is largest at low z and shrinks as z grows past 1, mirroring
// the analytic ratio crossing 1 near z = 1.
#include <iostream>

#include "core/sampling.h"
#include "core/sketch_params.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 100000;
  constexpr uint64_t kStreamLen = 400000;
  constexpr size_t kK = 20;
  constexpr size_t kL = 2 * kK;
  constexpr size_t kBudgetBytes = 12 * 1024;  // deliberately tight

  std::cout << "E10: Count-Sketch vs SAMPLING at equal space ("
            << kBudgetBytes / 1024 << " KiB), recall of true top-" << kK
            << "\n\n";

  TablePrinter table({"z", "CS recall", "SAMPLING recall",
                      "T1 space ratio (sampling/cs)"});

  for (double z : {0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4}) {
    auto workload = MakeZipfWorkload(kUniverse, z, kStreamLen,
                                     static_cast<uint64_t>(z * 100) + 3);
    SFQ_CHECK_OK(workload.status());
    const auto truth = workload->oracle.TopK(kK);

    // Count-Sketch at the byte budget: t=4 rows.
    CountSketchParams p;
    p.depth = 4;
    p.width = (kBudgetBytes - kL * 72) / (p.depth * sizeof(int64_t));
    p.seed = 606;
    auto cs = CountSketchTopK::Make(p, kL);
    SFQ_CHECK_OK(cs.status());
    cs->AddAll(workload->stream);
    const double cs_recall =
        ComputePrecisionRecall(cs->Candidates(kL), truth).recall;

    // SAMPLING at the same byte budget (24 B/entry).
    const double sample_entries = static_cast<double>(kBudgetBytes) / 24.0;
    const double prob = std::min(1.0, sample_entries /
                                          static_cast<double>(kStreamLen));
    auto sampling = SamplingSummary::Make(prob, 707);
    SFQ_CHECK_OK(sampling.status());
    sampling->AddAll(workload->stream);
    const double s_recall =
        ComputePrecisionRecall(sampling->Candidates(kL), truth).recall;

    table.AddRowValues(z, cs_recall, s_recall,
                       Table1SamplingSpace(z, kK, kUniverse) /
                           Table1CountSketchSpace(z, kK, kUniverse,
                                                  kStreamLen));
  }

  EmitTable(table, "E10_crossover", std::cout);
  std::cout << "\nReading: CS recall should dominate SAMPLING at z < 1 and "
               "the analytic ratio column should shrink toward (and past) "
               "the crossover as z increases. Note the ratio column is "
               "piecewise (the paper's Table 1 uses different asymptotic "
               "regimes for z<1, z=1, z>1), so it is not continuous across "
               "the z=1 row.\n";
  return 0;
}
