// E4 -- Theorem 1 / Section 3.2: ApproxTop(S, k, eps) end to end.
//
// Sizes the sketch from the stream's own statistics via Lemma 5, runs the
// paper's sketch+heap algorithm, and checks the output contract: every
// candidate has n_i >= (1-eps) n_k, and every item with n_i >= (1+eps) n_k
// is present. Also runs a "practical" sketch at 1/16 of the Lemma 5 width
// (the paper's constants are worst-case) and the adversarial boundary
// instance that motivates the ApproxTop relaxation.
//
// Expected shape: Lemma 5 widths always PASS; the 1/16 widths still
// mostly pass; the adversarial instance passes ApproxTop even though exact
// CandidateTop would be information-theoretically brutal there.
#include <iostream>

#include "core/sketch_params.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "stream/adversarial.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

namespace {

void RunCase(const std::string& label, const Stream& stream,
             const ExactCounter& oracle, size_t k, double eps,
             double width_scale, TablePrinter* table) {
  ApproxTopSpec spec;
  spec.stream_length = stream.size();
  spec.k = k;
  spec.epsilon = eps;
  spec.delta = 0.05;
  spec.residual_f2 = oracle.ResidualF2(k);
  spec.nk = static_cast<double>(oracle.NthCount(k));
  auto sizing = SizeForApproxTop(spec);
  SFQ_CHECK_OK(sizing.status());

  CountSketchParams params;
  params.depth = sizing->depth;
  params.width = std::max<size_t>(
      8, static_cast<size_t>(static_cast<double>(sizing->width) * width_scale));
  params.seed = 4242;
  auto algo = CountSketchTopK::Make(params, k);
  SFQ_CHECK_OK(algo.status());
  algo->AddAll(stream);

  const auto verdict = CheckApproxTop(algo->Candidates(k), oracle, k, eps);
  table->AddRowValues(label, eps, params.depth, params.width,
                      verdict.Pass() ? "PASS" : "FAIL", verdict.violations_low,
                      verdict.violations_missing);
}

}  // namespace

int main() {
  constexpr size_t kK = 10;
  std::cout << "E4: ApproxTop(S, k=" << kK << ", eps) via Lemma 5 sizing\n\n";
  TablePrinter table({"instance", "eps", "t", "b", "verdict",
                      "low-count candidates", "missing mandatory"});

  auto zipf = MakeZipfWorkload(20000, 1.0, 300000, 5150);
  SFQ_CHECK_OK(zipf.status());
  for (double eps : {0.05, 0.1, 0.2}) {
    RunCase("Zipf(1.0), Lemma5 b", zipf->stream, zipf->oracle, kK, eps, 1.0,
            &table);
  }
  for (double eps : {0.05, 0.1, 0.2}) {
    RunCase("Zipf(1.0), b/16", zipf->stream, zipf->oracle, kK, eps,
            1.0 / 16.0, &table);
  }

  // The adversarial boundary family from the paper's introduction:
  // n_k = n_{l+1} + 1. ApproxTop tolerates shadow items; exact top-k
  // recovery would require distinguishing counts 2000 vs 1999.
  AdversarialSpec aspec;
  aspec.k = kK;
  aspec.shadows = 30;
  aspec.head_count = 2000;
  aspec.gap = 1;
  aspec.tail_items = 20000;
  aspec.tail_count = 4;
  aspec.seed = 77;
  auto adversarial = MakeAdversarialStream(aspec);
  SFQ_CHECK_OK(adversarial.status());
  ExactCounter oracle;
  oracle.AddAll(*adversarial);
  for (double eps : {0.05, 0.2}) {
    RunCase("boundary n_k=n_l+1", *adversarial, oracle, kK, eps, 1.0, &table);
  }

  EmitTable(table, "E04_approxtop", std::cout);
  std::cout << "\nReading: all Lemma-5-sized rows must PASS (that is "
               "Theorem 1); the b/16 rows show the constants' slack; the "
               "boundary rows show the eps-relaxation doing its job where "
               "exact CandidateTop is adversarially hard.\n";
  return 0;
}
