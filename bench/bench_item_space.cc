// E6 -- Section 5: total space including the cost of storing items.
//
// The paper's closing comparison: Count-Sketch keeps only l ~ k objects
// from the stream while SAMPLING stores its whole distinct sample; when
// item payloads (query strings, URLs) cost beta >> log n bits, this
// dominates. This bench measures, on a Zipf(1) stream, the smallest
// SAMPLING sample that still recovers the top-k (so both algorithms are at
// equal quality), then prices both summaries across payload sizes.
//
// Expected shape: Count-Sketch total space is flat in beta's coefficient
// (l items only); SAMPLING's grows with distinct-sample * beta and loses
// badly once beta reaches tens of bytes.
#include <iostream>

#include "core/misra_gries.h"
#include "core/sampling.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 50000;
  constexpr uint64_t kStreamLen = 500000;
  constexpr size_t kK = 10;
  constexpr size_t kL = 2 * kK;

  auto workload = MakeZipfWorkload(kUniverse, 1.0, kStreamLen, 31415);
  SFQ_CHECK_OK(workload.status());
  const auto truth = workload->oracle.TopK(kK);

  // Find the minimal sampling rate recovering all top-k in the top-l
  // candidates (doubling search, 2 seeds).
  size_t sample_distinct = 0;
  for (size_t target = 64; target <= kStreamLen; target *= 2) {
    bool ok = true;
    size_t distinct = 0;
    for (uint64_t seed : {11u, 22u}) {
      const double p = std::min(
          1.0, static_cast<double>(target) / static_cast<double>(kStreamLen));
      auto s = SamplingSummary::Make(p, seed);
      SFQ_CHECK_OK(s.status());
      s->AddAll(workload->stream);
      if (ComputePrecisionRecall(s->Candidates(kL), truth).recall < 1.0) {
        ok = false;
        break;
      }
      distinct = s->DistinctSampled();
    }
    if (ok) {
      sample_distinct = distinct;
      break;
    }
  }

  // Find the minimal Count-Sketch width at equal quality.
  size_t cs_width = 0;
  constexpr size_t kDepth = 5;
  for (size_t width = 8; width <= (1u << 20); width *= 2) {
    bool ok = true;
    for (uint64_t seed : {11u, 22u}) {
      CountSketchParams p;
      p.depth = kDepth;
      p.width = width;
      p.seed = seed;
      auto algo = CountSketchTopK::Make(p, kL);
      SFQ_CHECK_OK(algo.status());
      algo->AddAll(workload->stream);
      if (ComputePrecisionRecall(algo->Candidates(kL), truth).recall < 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      cs_width = width;
      break;
    }
  }

  std::cout << "E6: total space including item payloads (Zipf z=1, k=" << kK
            << ", both algorithms at 100% top-k recall)\n"
            << "SAMPLING distinct sample: " << sample_distinct
            << " items; Count-Sketch: t=" << kDepth << ", b=" << cs_width
            << ", tracked l=" << kL << "\n\n";

  TablePrinter table({"item payload beta (bytes)", "SAMPLING total KiB",
                      "CountSketch total KiB", "ratio"});
  const double counter_bytes = 8.0;
  for (size_t beta : {8u, 32u, 64u, 256u, 1024u}) {
    // SAMPLING: one stored item + one counter per distinct sampled item.
    const double sampling_bytes =
        static_cast<double>(sample_distinct) *
        (static_cast<double>(beta) + counter_bytes);
    // Count-Sketch: counter array + l tracked (item payload + counter).
    const double cs_bytes =
        static_cast<double>(kDepth * cs_width) * counter_bytes +
        static_cast<double>(kL) * (static_cast<double>(beta) + counter_bytes);
    table.AddRowValues(beta, sampling_bytes / 1024.0, cs_bytes / 1024.0,
                       sampling_bytes / cs_bytes);
  }

  EmitTable(table, "E06_item_space", std::cout);
  std::cout << "\nReading: the ratio should grow with beta -- Count-Sketch "
               "stores only l items (paper Section 5's O(k*beta) vs "
               "SAMPLING's sample * beta).\n";
  return 0;
}
