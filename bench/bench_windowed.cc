// E13 -- sliding-window extension: accuracy and cost of the jumping-window
// Count-Sketch vs block granularity R.
//
// A drifting stream (the heavy item changes identity every window) is fed
// through jumping windows with increasing block counts. For each R we
// report the estimate accuracy for the *current* heavy item, the residual
// ("ghost") estimate for the *previous* epoch's heavy item, window
// coverage bounds, and memory.
//
// Expected shape: ghost mass shrinks as R grows (finer eviction); current
// accuracy stays high; memory grows linearly in R (+1 merged sketch).
#include <cstdlib>
#include <iostream>

#include "core/windowed.h"
#include "hash/random.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kWindow = 100000;
  constexpr int kEpochs = 6;
  // In each epoch of kWindow items, the epoch's hero appears 20% of the
  // time against uniform noise.
  std::cout << "E13: jumping-window Count-Sketch vs block count (window W="
            << kWindow << ", hero = 20% of arrivals, epoch = W items)\n\n";

  TablePrinter table({"blocks R", "hero est / true", "ghost est",
                      "coverage min", "space KiB"});

  for (size_t blocks : {2u, 4u, 8u, 16u, 32u}) {
    WindowedSketchParams params;
    params.window = kWindow;
    params.blocks = blocks;
    params.sketch.depth = 4;
    params.sketch.width = 2048;
    params.sketch.seed = 99;
    auto w = WindowedCountSketch::Make(params);
    SFQ_CHECK_OK(w.status());

    Xoshiro256 rng(1234);
    uint64_t coverage_min = kWindow;
    Count hero_true = 0;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const ItemId hero = 1000 + static_cast<ItemId>(epoch);
      hero_true = 0;
      for (uint64_t i = 0; i < kWindow; ++i) {
        if (rng.UniformDouble() < 0.2) {
          w->Add(hero);
          ++hero_true;
        } else {
          w->Add(1 << 20 | rng.UniformBelow(1 << 19));
        }
        if (epoch > 0) coverage_min = std::min(coverage_min, w->CoveredItems());
      }
    }
    const ItemId current_hero = 1000 + kEpochs - 1;
    const ItemId previous_hero = 1000 + kEpochs - 2;
    const double ratio = static_cast<double>(w->Estimate(current_hero)) /
                         static_cast<double>(hero_true);
    table.AddRowValues(
        blocks, ratio, w->Estimate(previous_hero), coverage_min,
        static_cast<double>(w->SpaceBytes()) / 1024.0);
  }

  EmitTable(table, "E13_windowed", std::cout);
  std::cout << "\nReading: hero est/true should sit near the coverage ratio "
               "(>= 1 - 1/R of the epoch); ghost estimates should be ~0 for "
               "every R (the previous hero left the window entirely); "
               "coverage min = W - W/R; space grows ~linearly in R.\n";
  return 0;
}
