// E8 -- comparative quality versus skew (the VLDB'08-style figure).
//
// Fixed space budget for every algorithm; sweep Zipf z; report recall of
// the true top-k. Counter-based algorithms and Count-Sketch should approach
// recall 1 as skew grows; plain SAMPLING should trail at low skew where the
// head is not much heavier than the tail.
#include <iostream>

#include "eval/runner.h"
#include "eval/suite.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 100000;
  constexpr uint64_t kStreamLen = 500000;
  constexpr size_t kK = 20;
  constexpr size_t kBudget = 32 * 1024;

  std::cout << "E8: recall@" << kK << " vs Zipf skew at a fixed "
            << kBudget / 1024 << " KiB budget (m=" << kUniverse
            << ", n=" << kStreamLen << ")\n\n";

  const std::vector<double> skews = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
  std::vector<std::string> headers = {"algorithm"};
  for (double z : skews) headers.push_back("z=" + TablePrinter::Format(z));
  TablePrinter table(headers);

  // One suite instance per (algorithm, z): algorithms are single-use.
  SuiteSpec spec;
  spec.space_budget_bytes = kBudget;
  spec.k = kK;
  spec.seed = 5;
  spec.expected_stream_length = kStreamLen;
  auto prototype = MakeDefaultSuite(spec);
  SFQ_CHECK_OK(prototype.status());

  std::vector<std::vector<std::string>> rows(prototype->size());
  for (size_t a = 0; a < prototype->size(); ++a) {
    rows[a].push_back((*prototype)[a]->Name());
  }

  for (double z : skews) {
    auto workload = MakeZipfWorkload(kUniverse, z, kStreamLen,
                                     static_cast<uint64_t>(z * 1000) + 17);
    SFQ_CHECK_OK(workload.status());
    auto suite = MakeDefaultSuite(spec);
    SFQ_CHECK_OK(suite.status());
    for (size_t a = 0; a < suite->size(); ++a) {
      const RunResult r = RunAndScore(*(*suite)[a], *workload, kK);
      rows[a].push_back(TablePrinter::Format(r.topk_quality.recall));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));

  EmitTable(table, "E08_precision_vs_skew", std::cout);
  std::cout << "\nReading: every column should improve toward 1.0 as z "
               "grows; sketches and counters should dominate the sampling "
               "family at low skew.\n";
  return 0;
}
