// Acceptance check for the failpoint layer's zero-overhead claim
// (docs/ROBUSTNESS.md).
//
// With STREAMFREQ_FAILPOINTS=ON (the default) a *disarmed* site must cost
// one relaxed atomic load — compare BM_DisarmedFailpoint against
// BM_FailpointFreeBaseline. With -DSTREAMFREQ_FAILPOINTS=OFF the macro
// expands to a constant `FailDecision{}` and the two benchmarks must be
// indistinguishable: scripts/check.sh builds this binary in the
// failpoints-off tree and runs it as the compile-out sanity check.
// BM_BatchQueueRoundTrip covers the realistic planting site: the
// producer/consumer hand-off in src/concurrent/batch_queue.cc.
#include <benchmark/benchmark.h>

#include <vector>

#include "concurrent/batch_queue.h"
#include "stream/types.h"
#include "util/failpoint.h"

namespace streamfreq {
namespace {

void BM_FailpointFreeBaseline(benchmark::State& state) {
  for (auto _ : state) {
    FailDecision decision{};
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_FailpointFreeBaseline);

void BM_DisarmedFailpoint(benchmark::State& state) {
  FailpointRegistry::Global().Disarm();
  for (auto _ : state) {
    FailDecision decision = SFQ_FAILPOINT("batch_queue.push");
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_DisarmedFailpoint);

void BM_BatchQueueRoundTrip(benchmark::State& state) {
  FailpointRegistry::Global().Disarm();
  BatchQueue queue(/*max_batches=*/64);
  const std::vector<ItemId> batch(256, ItemId{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Push(std::vector<ItemId>(batch)));
    auto out = queue.Pop();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BatchQueueRoundTrip);

}  // namespace
}  // namespace streamfreq

BENCHMARK_MAIN();
