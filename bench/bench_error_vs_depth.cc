// E3 -- Lemma 3/4: failure probability versus depth t.
//
// At a deliberately narrow width, single-row estimates often deviate past
// the tolerance; Lemma 3's Chernoff argument says the *median* over t rows
// fails exponentially more rarely as t grows. This bench measures, across
// seeds, the fraction of (item, sketch) pairs whose median estimate is off
// by more than 2*gamma, for increasing t.
//
// Expected shape: failure rate drops roughly geometrically in t and the
// odd/even staircase of the median is visible.
#include <cmath>
#include <iostream>

#include "core/count_sketch.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 20000;
  constexpr uint64_t kStreamLen = 200000;
  constexpr size_t kWidth = 64;  // narrow on purpose: rows fail often
  constexpr size_t kRanks = 200;
  constexpr uint64_t kSeeds = 20;

  auto workload = MakeZipfWorkload(kUniverse, 1.0, kStreamLen, 1618);
  SFQ_CHECK_OK(workload.status());
  const auto ranked = workload->oracle.SortedByCount();
  const double gamma = workload->oracle.Gamma(0, kWidth);
  const double tolerance = 2.0 * gamma;

  std::cout << "E3: median failure rate vs depth (b=" << kWidth
            << ", tolerance 2*gamma=" << tolerance << ", " << kSeeds
            << " seeds x top-" << kRanks << " items)\n\n";

  TablePrinter table({"depth t", "failure rate", "failures", "trials"});
  for (size_t depth : {1u, 2u, 3u, 5u, 7u, 9u, 13u, 17u}) {
    uint64_t failures = 0, trials = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      CountSketchParams p;
      p.depth = depth;
      p.width = kWidth;
      p.seed = seed * 15485863;
      auto sketch = CountSketch::Make(p);
      SFQ_CHECK_OK(sketch.status());
      for (ItemId q : workload->stream) sketch->Add(q);
      for (size_t r = 0; r < kRanks && r < ranked.size(); ++r) {
        const double err = std::abs(static_cast<double>(
            sketch->Estimate(ranked[r].item) - ranked[r].count));
        failures += err > tolerance;
        ++trials;
      }
    }
    table.AddRowValues(depth,
                       static_cast<double>(failures) / static_cast<double>(trials),
                       failures, trials);
  }

  EmitTable(table, "E03_error_vs_depth", std::cout);
  std::cout << "\nReading: the failure rate should fall steeply (roughly "
               "exponentially) as t grows -- the paper's log(n/delta) depth "
               "rule in action.\n";
  return 0;
}
