// E2 -- Lemmas 1-3: estimation error versus sketch width b.
//
// The paper's error scale is gamma = sqrt(F2^{>k} / b); Lemma 3 bounds the
// median estimate's error by 8*gamma w.h.p. This bench sweeps b, measures
// the average and maximum absolute error over the top-k items, and reports
// the observed error as a multiple of gamma.
//
// Expected shape: avg and max error fall as 1/sqrt(b) (halving when b
// quadruples); the max/gamma column stays comfortably below the paper's
// worst-case constant 8.
#include <cmath>
#include <iostream>

#include "core/count_sketch.h"
#include "eval/workload.h"
#include "util/logging.h"
#include "eval/report.h"
#include "util/table_printer.h"

using namespace streamfreq;

int main() {
  constexpr uint64_t kUniverse = 50000;
  constexpr uint64_t kStreamLen = 500000;
  constexpr size_t kK = 20;
  constexpr size_t kDepth = 5;

  auto workload = MakeZipfWorkload(kUniverse, 1.0, kStreamLen, 2718);
  SFQ_CHECK_OK(workload.status());
  const auto truth = workload->oracle.TopK(kK);

  std::cout << "E2: Count-Sketch error vs width (t=" << kDepth
            << ", Zipf z=1, n=" << kStreamLen << ", errors over true top-"
            << kK << ")\n\n";

  TablePrinter table({"width b", "gamma", "avg |err|", "max |err|",
                      "max/gamma", "8*gamma (Lemma 3 bound)"});

  for (size_t width : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    CountSketchParams p;
    p.depth = kDepth;
    p.width = width;
    p.seed = 31337;
    auto sketch = CountSketch::Make(p);
    SFQ_CHECK_OK(sketch.status());
    for (ItemId q : workload->stream) sketch->Add(q);

    const double gamma = workload->oracle.Gamma(kK, width);
    double total = 0.0, worst = 0.0;
    for (const ItemCount& ic : truth) {
      const double err = std::abs(
          static_cast<double>(sketch->Estimate(ic.item) - ic.count));
      total += err;
      worst = std::max(worst, err);
    }
    table.AddRowValues(width, gamma, total / static_cast<double>(truth.size()),
                       worst, gamma > 0 ? worst / gamma : 0.0, 8.0 * gamma);
  }

  EmitTable(table, "E02_error_vs_width", std::cout);
  std::cout << "\nReading: gamma and the measured errors should both scale "
               "as 1/sqrt(b); max/gamma must stay below 8.\n";
  return 0;
}
