// Algebraic property sweeps: the sketch group/monoid laws that distributed
// aggregation relies on (associativity, commutativity, identity, inverse),
// checked counter-exactly across parameterizations.
#include <gtest/gtest.h>

#include "core/ams_f2.h"
#include "core/count_sketch.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

struct LawCase {
  size_t depth;
  size_t width;
  HashFamily family;
};

std::string CaseName(const ::testing::TestParamInfo<LawCase>& info) {
  const char* fam = info.param.family == HashFamily::kCarterWegman    ? "CW"
                    : info.param.family == HashFamily::kMultiplyShift ? "MS"
                                                                      : "TAB";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "d%zu_b%zu_%s", info.param.depth,
                info.param.width, fam);
  return buf;
}

class SketchLawTest : public ::testing::TestWithParam<LawCase> {
 protected:
  CountSketchParams Params() const {
    CountSketchParams p;
    p.depth = GetParam().depth;
    p.width = GetParam().width;
    p.seed = 404;
    p.family = GetParam().family;
    return p;
  }

  CountSketch SketchOf(const Stream& s) const {
    auto sketch = CountSketch::Make(Params());
    EXPECT_TRUE(sketch.ok());
    for (ItemId q : s) sketch->Add(q);
    return std::move(*sketch);
  }

  static void ExpectEqualCounters(const CountSketch& a, const CountSketch& b) {
    for (size_t row = 0; row < a.depth(); ++row) {
      for (size_t col = 0; col < a.width(); ++col) {
        ASSERT_EQ(a.CounterAt(row, col), b.CounterAt(row, col))
            << "row " << row << " col " << col;
      }
    }
  }
};

TEST_P(SketchLawTest, MergeIsAssociativeAndCommutative) {
  auto gen = ZipfGenerator::Make(500, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream s1 = gen->Take(3000);
  const Stream s2 = gen->Take(3000);
  const Stream s3 = gen->Take(3000);

  // (1 + 2) + 3
  CountSketch left = SketchOf(s1);
  ASSERT_TRUE(left.Merge(SketchOf(s2)).ok());
  ASSERT_TRUE(left.Merge(SketchOf(s3)).ok());
  // 1 + (2 + 3)
  CountSketch right23 = SketchOf(s2);
  ASSERT_TRUE(right23.Merge(SketchOf(s3)).ok());
  CountSketch right = SketchOf(s1);
  ASSERT_TRUE(right.Merge(right23).ok());
  ExpectEqualCounters(left, right);

  // 3 + 2 + 1 (commutativity)
  CountSketch reversed = SketchOf(s3);
  ASSERT_TRUE(reversed.Merge(SketchOf(s2)).ok());
  ASSERT_TRUE(reversed.Merge(SketchOf(s1)).ok());
  ExpectEqualCounters(left, reversed);
}

TEST_P(SketchLawTest, EmptySketchIsIdentity) {
  auto gen = ZipfGenerator::Make(500, 1.0, 5);
  ASSERT_TRUE(gen.ok());
  const Stream s = gen->Take(3000);
  CountSketch loaded = SketchOf(s);
  auto empty = CountSketch::Make(Params());
  ASSERT_TRUE(empty.ok());
  CountSketch merged = SketchOf(s);
  ASSERT_TRUE(merged.Merge(*empty).ok());
  ExpectEqualCounters(loaded, merged);
}

TEST_P(SketchLawTest, SubtractIsInverseOfMerge) {
  auto gen = ZipfGenerator::Make(500, 1.0, 7);
  ASSERT_TRUE(gen.ok());
  const Stream s1 = gen->Take(3000);
  const Stream s2 = gen->Take(3000);
  CountSketch a = SketchOf(s1);
  ASSERT_TRUE(a.Merge(SketchOf(s2)).ok());
  ASSERT_TRUE(a.Subtract(SketchOf(s2)).ok());
  ExpectEqualCounters(a, SketchOf(s1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SketchLawTest,
    ::testing::Values(LawCase{1, 64, HashFamily::kCarterWegman},
                      LawCase{5, 256, HashFamily::kCarterWegman},
                      LawCase{4, 128, HashFamily::kMultiplyShift},
                      LawCase{3, 512, HashFamily::kTabulation}),
    CaseName);

TEST(AmsLawTest, MergeIsAssociative) {
  AmsF2Params p;
  p.groups = 3;
  p.atoms_per_group = 4;
  p.seed = 9;
  auto make_loaded = [&](uint64_t salt) {
    auto s = AmsF2Sketch::Make(p);
    EXPECT_TRUE(s.ok());
    for (ItemId q = 1; q <= 200; ++q) s->Add(q * salt, 3);
    return std::move(*s);
  };
  AmsF2Sketch left = make_loaded(1);
  AmsF2Sketch mid = make_loaded(2);
  ASSERT_TRUE(left.Merge(mid).ok());
  ASSERT_TRUE(left.Merge(make_loaded(3)).ok());

  AmsF2Sketch right_tail = make_loaded(2);
  ASSERT_TRUE(right_tail.Merge(make_loaded(3)).ok());
  AmsF2Sketch right = make_loaded(1);
  ASSERT_TRUE(right.Merge(right_tail).ok());

  EXPECT_DOUBLE_EQ(left.Estimate(), right.Estimate());
}

}  // namespace
}  // namespace streamfreq
