#include "core/typed.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "hash/random.h"

namespace streamfreq {
namespace {

CountSketchParams DefaultSketch() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 2048;
  p.seed = 3;
  return p;
}

TEST(StringTopKTest, PropagatesConstructionErrors) {
  CountSketchParams p = DefaultSketch();
  p.depth = 0;
  EXPECT_TRUE(StringTopK::Make(p, 10).status().IsInvalidArgument());
  EXPECT_TRUE(StringTopK::Make(DefaultSketch(), 0).status().IsInvalidArgument());
}

TEST(StringTopKTest, TracksFrequentQueries) {
  auto topk = StringTopK::Make(DefaultSketch(), 10);
  ASSERT_TRUE(topk.ok());
  for (int i = 0; i < 500; ++i) topk->Add("weather");
  for (int i = 0; i < 300; ++i) topk->Add("news");
  for (int i = 0; i < 100; ++i) topk->Add("maps");
  for (int i = 0; i < 2000; ++i) topk->Add("rare-" + std::to_string(i));

  const auto candidates = topk->Candidates(3);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].key, "weather");
  EXPECT_EQ(candidates[1].key, "news");
  EXPECT_EQ(candidates[2].key, "maps");
}

TEST(StringTopKTest, EstimatesFrequentKeysAccurately) {
  auto topk = StringTopK::Make(DefaultSketch(), 10);
  ASSERT_TRUE(topk.ok());
  for (int i = 0; i < 1000; ++i) topk->Add("popular");
  EXPECT_NEAR(static_cast<double>(topk->Estimate("popular")), 1000.0, 50.0);
  EXPECT_NEAR(static_cast<double>(topk->Estimate("never-seen")), 0.0, 50.0);
}

TEST(StringTopKTest, KeysFollowEvictions) {
  // Small tracked set under churn: every candidate must resolve to a real
  // key (the dictionary must track insertions and evictions exactly).
  auto topk = StringTopK::Make(DefaultSketch(), 4);
  ASSERT_TRUE(topk.ok());
  Xoshiro256 rng(5);
  for (int i = 0; i < 30000; ++i) {
    topk->Add("key-" + std::to_string(rng.UniformBelow(50)),
              1 + static_cast<Count>(rng.UniformBelow(3)));
  }
  for (const KeyCount& kc : topk->Candidates(4)) {
    EXPECT_NE(kc.key, "<unknown>") << "dictionary lost a tracked key";
    EXPECT_EQ(kc.key.rfind("key-", 0), 0u);
  }
}

TEST(StringTopKTest, WeightedAdds) {
  auto topk = StringTopK::Make(DefaultSketch(), 5);
  ASSERT_TRUE(topk.ok());
  topk->Add("bulk", 500);
  topk->Add("single");
  const auto c = topk->Candidates(2);
  ASSERT_GE(c.size(), 1u);
  EXPECT_EQ(c[0].key, "bulk");
  EXPECT_EQ(c[0].count, 500);
}

TEST(StringTopKTest, SpaceIncludesStoredKeys) {
  auto topk = StringTopK::Make(DefaultSketch(), 5);
  ASSERT_TRUE(topk.ok());
  const size_t before = topk->SpaceBytes();
  topk->Add(std::string(1000, 'x'));
  EXPECT_GT(topk->SpaceBytes(), before + 500)
      << "stored key bytes must be accounted";
}

}  // namespace
}  // namespace streamfreq
