#include "verify/chaos.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/failpoint.h"

namespace streamfreq {
namespace {

// ThreadSanitizer slows the ingestion pipeline ~10x; shrink the campaign
// there so the concurrent suite stays fast under scripts/check.sh.
#if defined(__SANITIZE_THREAD__)
constexpr uint64_t kCampaignIterations = 40;
#else
constexpr uint64_t kCampaignIterations = 200;
#endif

TEST(ChaosTest, SchedulesAreDeterministicBoundedAndParseable) {
  for (uint64_t index = 0; index < 64; ++index) {
    const std::string a = ChaosScheduleForIteration(11, index);
    const std::string b = ChaosScheduleForIteration(11, index);
    EXPECT_EQ(a, b) << "schedule must be a pure function of (seed, index)";
    EXPECT_FALSE(a.empty());
    // Every crash clause must carry a fire budget, or the respawn loop
    // would never terminate.
    for (size_t pos = a.find("crash"); pos != std::string::npos;
         pos = a.find("crash", pos + 1)) {
      EXPECT_EQ(a[pos + 5], '*') << a;
    }
    // And every schedule must be a valid spec for the registry.
    ScopedFailpoints fp(a, 1);
    EXPECT_TRUE(fp.status().ok()) << a << ": " << fp.status().ToString();
  }
  EXPECT_NE(ChaosScheduleForIteration(11, 1), ChaosScheduleForIteration(12, 1));
}

// The acceptance-criteria campaign: many seeded iterations with faults
// armed, and every single one ends in a clean error Status or a sketch
// that passes its guarantee checker over the effective stream.
TEST(ChaosTest, CampaignSurvivesRandomizedFaultSchedules) {
  ChaosOptions options;
  options.seed = 2026;
  options.iterations = kCampaignIterations;
  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->iterations, kCampaignIterations);
  EXPECT_EQ(report->verified + report->clean_errors, kCampaignIterations);
  EXPECT_TRUE(report->Passed());
  EXPECT_EQ(report->guarantee_failures, 0u);
  for (const ChaosFailure& failure : report->failures) {
    ADD_FAILURE() << "iteration " << failure.index << " [" << failure.schedule
                  << "] " << failure.program << ": " << failure.detail;
  }
  // The campaign must actually inject faults, not vacuously pass.
  EXPECT_GT(report->faulted_iterations, 0u);
  EXPECT_GT(report->fault_fires, 0u);
  // Most iterations still produce a verifiable sketch.
  EXPECT_GT(report->verified, 0u);
}

TEST(ChaosTest, KillOneWorkerScheduleAlwaysRecovers) {
  ChaosOptions options;
  options.seed = 7;
  options.iterations = 5;
  options.failpoints = "ingestor.worker_batch=crash*2";
  options.exercise_io = false;
  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Two bounded crashes per iteration, each recovered by a respawn with
  // the in-flight batch requeued — so every iteration still verifies.
  EXPECT_EQ(report->worker_respawns, 2u * options.iterations);
  EXPECT_EQ(report->verified, options.iterations);
  EXPECT_EQ(report->guarantee_failures, 0u);
}

TEST(ChaosTest, FaultFreeCampaignVerifies) {
  ChaosOptions options;
  options.seed = 13;
  options.iterations = 3;
  options.failpoints = "batch_queue.push=off";  // valid spec, disarms all
  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->fault_fires, 0u);
  EXPECT_EQ(report->verified + report->clean_errors, 3u);
  EXPECT_EQ(report->guarantee_failures, 0u);
}

TEST(ChaosTest, InjectedIoFaultsSurfaceAsCleanStatuses) {
  ChaosOptions options;
  options.seed = 19;
  options.iterations = 3;
  options.failpoints = "sketch_io.write=error*1";
  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->io_round_trips, 3u);
  EXPECT_EQ(report->io_faults, 3u);
  EXPECT_EQ(report->guarantee_failures, 0u);
}

TEST(ChaosTest, ServerSchedulesAreDeterministicBoundedAndParseable) {
  for (uint64_t index = 0; index < 64; ++index) {
    const std::string a = ServerChaosScheduleForIteration(11, index);
    EXPECT_EQ(a, ServerChaosScheduleForIteration(11, index));
    EXPECT_FALSE(a.empty());
    for (size_t pos = a.find("crash"); pos != std::string::npos;
         pos = a.find("crash", pos + 1)) {
      EXPECT_EQ(a[pos + 5], '*') << a;
    }
    ScopedFailpoints fp(a, 1);
    EXPECT_TRUE(fp.status().ok()) << a << ": " << fp.status().ToString();
  }
}

TEST(ChaosTest, RestartSchedulesAreDeterministicBoundedAndParseable) {
  for (uint64_t index = 0; index < 64; ++index) {
    const std::string a = ServerRestartScheduleForIteration(11, index);
    EXPECT_EQ(a, ServerRestartScheduleForIteration(11, index));
    EXPECT_FALSE(a.empty());
    // Every crash clause is budgeted: an unbounded always-crash daemon
    // would die at the same site forever and the iteration could never
    // finish its stream.
    for (size_t pos = a.find("crash"); pos != std::string::npos;
         pos = a.find("crash", pos + 1)) {
      EXPECT_EQ(a.substr(pos + 5, 7), "@0.08*1") << a;
    }
    // At most one clause per site (two clauses on one site would make the
    // later one win silently), and the whole spec must parse.
    std::set<std::string> sites;
    size_t begin = 0;
    while (begin <= a.size()) {
      const size_t end = std::min(a.find(';', begin), a.size());
      const std::string clause = a.substr(begin, end - begin);
      const std::string site = clause.substr(0, clause.find('='));
      EXPECT_TRUE(sites.insert(site).second)
          << "duplicate clause for " << site << " in " << a;
      begin = end + 1;
    }
    ScopedFailpoints fp(a, 1);
    EXPECT_TRUE(fp.status().ok()) << a << ": " << fp.status().ToString();
  }
  EXPECT_NE(ServerRestartScheduleForIteration(11, 1),
            ServerRestartScheduleForIteration(12, 1));
}

// The server-side acceptance campaign: real connections severed at
// accept/read/write, snapshots withheld, workers crashed — and every
// iteration must still reconcile per-tenant mass accounting exactly and
// serve verifiable sealed sketches.
TEST(ChaosTest, ServerCampaignReconcilesUnderFaults) {
#if defined(__SANITIZE_THREAD__)
  constexpr uint64_t kServerIterations = 6;
#else
  constexpr uint64_t kServerIterations = 12;
#endif
  ChaosOptions options;
  options.seed = 2026;
  options.iterations = kServerIterations;
  auto report = RunServerChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->iterations, kServerIterations);
  EXPECT_TRUE(report->Passed());
  for (const ChaosFailure& failure : report->failures) {
    ADD_FAILURE() << "iteration " << failure.index << " ["
                  << failure.schedule << "]: " << failure.detail;
  }
  // Not vacuous: faults really fired and requests really flowed.
  EXPECT_GT(report->faulted_iterations, 0u);
  EXPECT_GT(report->server_requests, 0u);
  EXPECT_GT(report->verified, 0u);
}

TEST(ChaosTest, RejectsZeroIterations) {
  ChaosOptions options;
  options.iterations = 0;
  EXPECT_TRUE(RunChaosCampaign(options).status().IsInvalidArgument());
}

TEST(ChaosTest, BadFailpointSpecIsHarnessError) {
  ChaosOptions options;
  options.iterations = 1;
  options.failpoints = "no_such.site=error";
  EXPECT_TRUE(RunChaosCampaign(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace streamfreq
