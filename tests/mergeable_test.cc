// Mergeable-summaries tests: distributed aggregation with counter-based
// algorithms (the counterpart to the paper's sketch additivity).
#include <gtest/gtest.h>

#include "core/misra_gries.h"
#include "core/space_saving.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(MergeableMisraGriesTest, RejectsMismatchedCapacities) {
  auto a = MisraGries::Make(8);
  auto b = MisraGries::Make(16);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
}

TEST(MergeableMisraGriesTest, DisjointSmallStreamsMergeExactly) {
  auto a = MisraGries::Make(10);
  auto b = MisraGries::Make(10);
  ASSERT_TRUE(a.ok() && b.ok());
  for (ItemId q = 1; q <= 5; ++q) a->Add(q, static_cast<Count>(10 * q));
  for (ItemId q = 4; q <= 8; ++q) b->Add(q, static_cast<Count>(100 * q));
  ASSERT_TRUE(a->Merge(*b).ok());
  // Everything fits: counts are exact sums.
  EXPECT_EQ(a->Estimate(3), 30);
  EXPECT_EQ(a->Estimate(4), 40 + 400);
  EXPECT_EQ(a->Estimate(8), 800);
  EXPECT_EQ(a->MaxError(), 0);
}

TEST(MergeableMisraGriesTest, MergedGuaranteeHoldsOnUnionStream) {
  // Split a Zipf stream across 4 "nodes", merge pairwise, and verify the
  // union-stream Misra-Gries guarantees.
  auto gen = ZipfGenerator::Make(3000, 1.1, 7);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kCap = 64;
  constexpr size_t kPerNode = 25000;

  ExactCounter oracle;
  std::vector<MisraGries> nodes;
  for (int node = 0; node < 4; ++node) {
    auto mg = MisraGries::Make(kCap);
    ASSERT_TRUE(mg.ok());
    for (size_t i = 0; i < kPerNode; ++i) {
      const ItemId q = gen->Next();
      mg->Add(q);
      oracle.Add(q);
    }
    nodes.push_back(std::move(*mg));
  }
  ASSERT_TRUE(nodes[0].Merge(nodes[1]).ok());
  ASSERT_TRUE(nodes[2].Merge(nodes[3]).ok());
  ASSERT_TRUE(nodes[0].Merge(nodes[2]).ok());

  const Count n = static_cast<Count>(4 * kPerNode);
  const Count bound = n / static_cast<Count>(kCap + 1);
  size_t monitored = 0;
  for (const auto& [item, count] : oracle.counts()) {
    const Count est = nodes[0].Estimate(item);
    ASSERT_LE(est, count) << "merged MG must not overestimate";
    ASSERT_GE(est, count - bound) << "merged undercount beyond (n1+n2)/(c+1)";
    monitored += est > 0;
  }
  EXPECT_LE(nodes[0].Candidates(10 * kCap).size(), kCap);
  EXPECT_LE(nodes[0].MaxError(), bound);
}

TEST(MergeableSpaceSavingTest, RejectsMismatchedCapacities) {
  auto a = SpaceSaving::Make(8);
  auto b = SpaceSaving::Make(16);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
}

TEST(MergeableSpaceSavingTest, DisjointSmallStreamsMergeExactly) {
  auto a = SpaceSaving::Make(10);
  auto b = SpaceSaving::Make(10);
  ASSERT_TRUE(a.ok() && b.ok());
  for (ItemId q = 1; q <= 5; ++q) a->Add(q, static_cast<Count>(10 * q));
  for (ItemId q = 4; q <= 8; ++q) b->Add(q, static_cast<Count>(100 * q));
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Estimate(4), 440);
  EXPECT_EQ(a->ErrorOf(4), 0);
  EXPECT_EQ(a->Estimate(8), 800);
}

TEST(MergeableSpaceSavingTest, MergedBoundsHoldOnUnionStream) {
  auto gen = ZipfGenerator::Make(3000, 1.1, 11);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kCap = 64;
  constexpr size_t kPerNode = 25000;

  ExactCounter oracle;
  auto a = SpaceSaving::Make(kCap);
  auto b = SpaceSaving::Make(kCap);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < kPerNode; ++i) {
    const ItemId q = gen->Next();
    a->Add(q);
    oracle.Add(q);
  }
  for (size_t i = 0; i < kPerNode; ++i) {
    const ItemId q = gen->Next();
    b->Add(q);
    oracle.Add(q);
  }
  ASSERT_TRUE(a->Merge(*b).ok());

  for (const ItemCount& ic : a->Candidates(kCap)) {
    ASSERT_GE(ic.count, oracle.CountOf(ic.item))
        << "merged counts must stay upper bounds";
    ASSERT_LE(ic.count - a->ErrorOf(ic.item), oracle.CountOf(ic.item))
        << "merged count - error must stay a lower bound";
  }
  // The merged top candidates must include the true union head.
  const auto truth = oracle.TopK(5);
  const auto candidates = a->Candidates(10);
  for (const ItemCount& t : truth) {
    bool found = false;
    for (const ItemCount& c : candidates) found |= c.item == t.item;
    EXPECT_TRUE(found) << "true union top-5 item " << t.item
                       << " missing after merge";
  }
}

TEST(MergeableSpaceSavingTest, MergePreservesHeapIntegrity) {
  auto a = SpaceSaving::Make(4);
  auto b = SpaceSaving::Make(4);
  ASSERT_TRUE(a.ok() && b.ok());
  for (ItemId q = 1; q <= 8; ++q) a->Add(q, static_cast<Count>(q));
  for (ItemId q = 5; q <= 12; ++q) b->Add(q, static_cast<Count>(q));
  ASSERT_TRUE(a->Merge(*b).ok());
  // Post-merge the structure must keep absorbing updates correctly.
  for (ItemId q = 100; q <= 120; ++q) a->Add(q, 50);
  EXPECT_EQ(a->MonitoredCount(), 4u);
  EXPECT_GT(a->MinCount(), 0);
}

}  // namespace
}  // namespace streamfreq
