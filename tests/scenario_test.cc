// Scenario-guard tests: the qualitative claims the examples demonstrate,
// asserted so CI catches regressions the unit tests might miss.
#include <gtest/gtest.h>

#include <cmath>

#include "core/count_sketch.h"
#include "core/decayed.h"
#include "core/hierarchical_cm.h"
#include "core/phi_heavy_hitters.h"
#include "core/top_k_tracker.h"
#include "core/windowed.h"
#include "hash/random.h"

namespace streamfreq {
namespace {

// live_dashboard: after drift, the whole-stream view is stale while
// windowed and decayed views rank the current hero first.
TEST(ScenarioTest, RecencyModelsDivergeAfterDrift) {
  CountSketchParams base;
  base.depth = 5;
  base.width = 2048;
  base.seed = 77;
  auto whole = CountSketchTopK::Make(base, 10);
  ASSERT_TRUE(whole.ok());

  WindowedSketchParams wp;
  wp.window = 40000;
  wp.blocks = 8;
  wp.sketch = base;
  auto window = WindowedCountSketch::Make(wp);
  ASSERT_TRUE(window.ok());

  DecayedSketchParams dp;
  dp.depth = base.depth;
  dp.width = base.width;
  dp.seed = base.seed;
  dp.half_life = 10000.0;
  auto decayed = DecayedCountSketch::Make(dp);
  ASSERT_TRUE(decayed.ok());

  Xoshiro256 rng(5);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const ItemId hero = 1001 + static_cast<ItemId>(epoch);
    for (int i = 0; i < 80000; ++i) {
      const ItemId q = rng.UniformDouble() < 0.1
                           ? hero
                           : (1u << 20) + static_cast<ItemId>(
                                              rng.UniformBelow(1u << 17));
      whole->Add(q);
      window->Add(q);
      decayed->Add(q);
      decayed->Tick();
    }
  }

  // Whole-stream: both heroes similar; stale.
  const double whole_ratio =
      static_cast<double>(whole->Estimate(1002)) /
      static_cast<double>(std::max<Count>(1, whole->Estimate(1001)));
  EXPECT_LT(whole_ratio, 2.0) << "whole-stream view should not forget";
  // Window: old hero gone.
  EXPECT_GT(window->Estimate(1002), 20 * std::max<Count>(1, window->Estimate(1001)));
  // Decay: current hero dominates but old hero not exactly zero.
  EXPECT_GT(decayed->Estimate(1002), 5.0 * std::max(1.0, decayed->Estimate(1001)));
}

// latency_quantiles: a planted spike at one value is isolated by the
// dyadic heavy-hitter descent and visible in the p999.
TEST(ScenarioTest, LatencySpikeIsolatedByDyadicDescent) {
  HierarchicalParams params;
  params.bits = 18;
  params.depth = 4;
  params.width = 2048;
  params.seed = 3;
  auto sketch = HierarchicalCountMin::Make(params);
  ASSERT_TRUE(sketch.ok());

  Xoshiro256 rng(7);
  constexpr int kN = 300000;
  constexpr uint64_t kSpike = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.UniformDouble() < 0.005) {
      sketch->Add(kSpike);
    } else {
      const double u1 = std::max(rng.UniformDouble(), 1e-12);
      const double u2 = rng.UniformDouble();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      sketch->Add(static_cast<uint64_t>(
          std::clamp(std::exp(6.0 + 0.8 * z), 1.0, 262143.0)));
    }
  }

  const auto hits = sketch->HeavyHitters(kN / 400);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].key, kSpike) << "spike must be the top heavy bucket";

  const uint64_t p999 = sketch->KeyAtRank(kN * 999 / 1000);
  EXPECT_NEAR(static_cast<double>(p999), static_cast<double>(kSpike), 500.0)
      << "the spike should pin the p999";
}

// network_heavy_hitters: the phi facade never misses an elephant and the
// ApproxTop verdict holds for a properly sized Count-Sketch.
TEST(ScenarioTest, ElephantFlowsAlwaysReported) {
  auto hh = PhiHeavyHitters::Make(0.02);
  ASSERT_TRUE(hh.ok());
  Xoshiro256 rng(11);
  // 3 elephants at ~5% each, mice fill the rest.
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble();
    if (u < 0.05) {
      hh->Add(1);
    } else if (u < 0.10) {
      hh->Add(2);
    } else if (u < 0.15) {
      hh->Add(3);
    } else {
      hh->Add(1000 + rng.UniformBelow(50000));
    }
  }
  bool found1 = false, found2 = false, found3 = false;
  for (const PhiHeavyHitter& r : hh->GuaranteedOnly()) {
    found1 |= r.item == 1;
    found2 |= r.item == 2;
    found3 |= r.item == 3;
  }
  EXPECT_TRUE(found1 && found2 && found3)
      << "every 5% elephant must be in the guaranteed list at phi=2%";
}

}  // namespace
}  // namespace streamfreq
