#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace streamfreq {
namespace crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors (RFC 3720 appendix / common test suites).
  EXPECT_EQ(Value("", 0), 0x00000000U);
  const std::string num = "123456789";
  EXPECT_EQ(Value(num.data(), num.size()), 0xE3069283U);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Value(zeros.data(), zeros.size()), 0x8A9136AAU);
}

TEST(Crc32cTest, ExtendMatchesWholeBuffer) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Value(data.data(), data.size());
  uint32_t incremental = 0;
  incremental = Extend(incremental, data.data(), 10);
  incremental = Extend(incremental, data.data() + 10, data.size() - 10);
  EXPECT_EQ(incremental, whole);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(100, 'a');
  const uint32_t original = Value(data.data(), data.size());
  for (size_t byte : {0u, 50u, 99u}) {
    std::string corrupted = data;
    corrupted[byte] ^= 1;
    EXPECT_NE(Value(corrupted.data(), corrupted.size()), original);
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0x0U, 0x1U, 0xDEADBEEFU, 0xFFFFFFFFU}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc) << "mask must change the value";
  }
}

}  // namespace
}  // namespace crc32c
}  // namespace streamfreq
