// End-to-end battery for `sfq serve`: concurrent client threads pushing
// into disjoint and shared tenants while queriers read snapshots, then
// seal + export and judge the served sketches the same way the verify
// layer judges locally built ones — exact bit-identity to a sequential
// reference (linearity) plus the Lemma 4/5 guarantee check against the
// oracle. Runs under ThreadSanitizer via scripts/check.sh (-L concurrent).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "stream/zipf.h"
#include "verify/checkers.h"
#include "verify/oracle.h"

namespace streamfreq {
namespace {

// ThreadSanitizer slows everything ~10x; shrink the streams there so the
// concurrent suite stays fast under scripts/check.sh's race sweep.
#if defined(__SANITIZE_THREAD__)
constexpr size_t kStreamItems = 30000;
#else
constexpr size_t kStreamItems = 120000;
#endif

Stream MakeZipfStream(size_t n, uint64_t seed) {
  auto gen = ZipfGenerator::Make(8000, 1.0, seed);
  EXPECT_TRUE(gen.ok());
  return gen->Take(n);
}

struct SizedTenant {
  VerifySetup setup;
  VerifySketchPlan plan;
  TenantSpec spec;
};

// Sizes a tenant's sketch exactly the way the verify layer would size a
// local one (Lemma 5 over the stream's oracle), so the exported sketch can
// be judged against the same bounds.
SizedTenant SizeTenant(const Oracle& oracle, uint64_t seed) {
  SizedTenant sized;
  sized.setup = MakeVerifySetup(/*k=*/10, /*epsilon=*/0.2,
                                /*width_scale=*/1.0, seed, oracle);
  auto plan = PlanVerifyCountSketch(sized.setup);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  sized.plan = *plan;
  sized.spec.depth = sized.plan.params.depth;
  sized.spec.width = sized.plan.params.width;
  sized.spec.seed = sized.plan.params.seed;
  sized.spec.threads = 2;
  sized.spec.tracked = 256;
  return sized;
}

// The sequential reference the server must match bit for bit: linearity
// makes merged parallel ingest equal to one-thread ingest of the same
// multiset, byte-identical once serialized.
std::string ReferenceBytes(const CountSketchParams& params,
                           const Stream& stream) {
  auto reference = CountSketch::Make(params);
  EXPECT_TRUE(reference.ok());
  for (const ItemId q : stream) reference->Add(q, 1);
  std::string bytes;
  reference->SerializeTo(&bytes);
  return bytes;
}

std::string SketchBytes(const CountSketch& sketch) {
  std::string bytes;
  sketch.SerializeTo(&bytes);
  return bytes;
}

// Pulls `"field":<integer>` out of the statsz JSON, scoped to one tenant's
// object so equal field names across tenants cannot alias.
int64_t StatszField(const std::string& json, const std::string& tenant,
                    const std::string& field) {
  const size_t tenant_at = json.find("\"" + tenant + "\":{");
  EXPECT_NE(tenant_at, std::string::npos) << tenant << " not in " << json;
  if (tenant_at == std::string::npos) return -1;
  const size_t scope_end = json.find('}', tenant_at);
  const size_t field_at = json.find("\"" + field + "\":", tenant_at);
  EXPECT_NE(field_at, std::string::npos) << field << " not in " << json;
  if (field_at == std::string::npos || field_at > scope_end) return -1;
  return std::strtoll(json.c_str() + field_at + field.size() + 3, nullptr, 10);
}

class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.socket_path =
        ::testing::TempDir() + "/sfq_e2e_" +
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".sock";
    auto server = SfqServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->RequestStop();
  }

  SfqClient MustConnect() {
    auto client = SfqClient::Connect(server_->socket_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::unique_ptr<SfqServer> server_;
};

// Four writer threads, each owning a tenant, with two reader threads
// hammering snapshot queries the whole time. Every query must succeed with
// a non-decreasing epoch, and every sealed tenant must export a sketch
// bit-identical to its sequential reference and clean under the oracle
// check.
TEST_F(ServerE2eTest, DisjointTenantsConcurrentWritersMatchOracles) {
  constexpr size_t kWriters = 4;
  std::vector<Stream> streams;
  std::vector<std::unique_ptr<Oracle>> oracles;
  std::vector<SizedTenant> sized;
  std::vector<std::string> tenants;
  {
    SfqClient admin = MustConnect();
    for (size_t w = 0; w < kWriters; ++w) {
      streams.push_back(MakeZipfStream(kStreamItems, 100 + w));
      oracles.push_back(std::make_unique<Oracle>(streams.back()));
      sized.push_back(SizeTenant(*oracles.back(), 100 + w));
      tenants.push_back("writer-" + std::to_string(w));
      ASSERT_TRUE(admin.CreateTenant(tenants.back(), sized.back().spec).ok());
    }
  }

  std::vector<Status> writer_status(kWriters);
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, &writer_status, &streams, &tenants, w] {
      auto client = SfqClient::Connect(server_->socket_path());
      if (!client.ok()) {
        writer_status[w] = client.status();
        return;
      }
      writer_status[w] =
          client->Ingest(tenants[w], std::span<const ItemId>(streams[w]));
    });
  }

  // Readers: every query OK, epochs never go backwards per tenant.
  std::vector<Status> reader_status(2);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < reader_status.size(); ++r) {
    readers.emplace_back([this, &reader_status, &tenants, &writers_done, r] {
      auto client = SfqClient::Connect(server_->socket_path());
      if (!client.ok()) {
        reader_status[r] = client.status();
        return;
      }
      std::vector<uint64_t> last_epoch(tenants.size(), 0);
      while (!writers_done.load(std::memory_order_acquire)) {
        for (size_t t = 0; t < tenants.size(); ++t) {
          uint64_t epoch = 0;
          auto top = client->TopK(tenants[t], 5, &epoch);
          if (!top.ok()) {
            reader_status[r] = top.status();
            return;
          }
          if (epoch < last_epoch[t]) {
            reader_status[r] = Status::Internal(
                "epoch went backwards on " + tenants[t]);
            return;
          }
          last_epoch[t] = epoch;
          auto estimate = client->Estimate(tenants[t], 1, &epoch);
          if (!estimate.ok()) {
            reader_status[r] = estimate.status();
            return;
          }
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (size_t w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(writer_status[w].ok()) << writer_status[w].ToString();
  }
  for (const Status& s : reader_status) ASSERT_TRUE(s.ok()) << s.ToString();

  SfqClient admin = MustConnect();
  for (size_t w = 0; w < kWriters; ++w) {
    auto sealed_epoch = admin.Seal(tenants[w]);
    ASSERT_TRUE(sealed_epoch.ok()) << sealed_epoch.status().ToString();

    auto exported = admin.Export(tenants[w]);
    ASSERT_TRUE(exported.ok()) << exported.status().ToString();
    EXPECT_EQ(SketchBytes(*exported),
              ReferenceBytes(sized[w].plan.params, streams[w]))
        << tenants[w] << ": served sketch is not bit-identical to the "
        << "sequential reference";

    const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
        *exported, *oracles[w], sized[w].setup, sized[w].plan.lemma_width);
    EXPECT_TRUE(violations.empty())
        << tenants[w] << ": " << violations.size() << " violations, first: "
        << FormatViolation(violations.front());
  }

  // Conservation, as served by /statsz: block-policy tenants admit
  // everything they ack, so offered == ingested and nothing was dropped.
  auto statsz = admin.Statsz();
  ASSERT_TRUE(statsz.ok()) << statsz.status().ToString();
  for (size_t w = 0; w < kWriters; ++w) {
    EXPECT_EQ(StatszField(*statsz, tenants[w], "offered_items"),
              static_cast<int64_t>(kStreamItems));
    EXPECT_EQ(StatszField(*statsz, tenants[w], "items_ingested"),
              static_cast<int64_t>(kStreamItems));
    EXPECT_EQ(StatszField(*statsz, tenants[w], "rejected_items"), 0);
    EXPECT_EQ(StatszField(*statsz, tenants[w], "shed_items"), 0);
  }
}

// Four writers interleave disjoint slices of ONE stream into a shared
// tenant. By linearity the merged result must equal the one-thread
// sequential sketch of the whole stream, bit for bit, no matter how the
// slices raced.
TEST_F(ServerE2eTest, SharedTenantSlicesMergeToSequential) {
  constexpr size_t kWriters = 4;
  const Stream stream = MakeZipfStream(kStreamItems, 7);
  const Oracle oracle(stream);
  const SizedTenant sized = SizeTenant(oracle, 7);
  const std::string tenant = "shared";
  {
    SfqClient admin = MustConnect();
    ASSERT_TRUE(admin.CreateTenant(tenant, sized.spec).ok());
  }

  const size_t slice = stream.size() / kWriters;
  std::vector<Status> writer_status(kWriters);
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, &writer_status, &stream, &tenant, slice, w] {
      auto client = SfqClient::Connect(server_->socket_path());
      if (!client.ok()) {
        writer_status[w] = client.status();
        return;
      }
      const size_t begin = w * slice;
      const size_t end = w + 1 == kWriters ? stream.size() : begin + slice;
      writer_status[w] = client->Ingest(
          tenant, std::span<const ItemId>(stream).subspan(begin, end - begin));
    });
  }
  for (std::thread& t : writers) t.join();
  for (const Status& s : writer_status) ASSERT_TRUE(s.ok()) << s.ToString();

  SfqClient admin = MustConnect();
  ASSERT_TRUE(admin.Seal(tenant).ok());
  auto exported = admin.Export(tenant);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(SketchBytes(*exported), ReferenceBytes(sized.plan.params, stream));

  const std::vector<Violation> violations = CheckCountSketchAgainstOracle(
      *exported, oracle, sized.setup, sized.plan.lemma_width);
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";
}

// Mark-then-diff over the wire: after MarkEpoch, the max-change ranking is
// the sketch of the delta stream alone (Subtract cancels the prefix), so a
// planted heavy item in the second half must rank first with roughly its
// true delta count.
TEST_F(ServerE2eTest, MaxChangeFindsTheDeltaHeavyHitter) {
  constexpr ItemId kHeavyItem = 987654321;
  // Must out-count the delta stream's own zipf head (~11% of the half) to
  // pin the top max-change rank deterministically.
  constexpr Count kHeavyCount = 12000;
  const Stream before = MakeZipfStream(kStreamItems / 2, 21);
  Stream after = MakeZipfStream(kStreamItems / 2, 22);
  after.insert(after.end(), static_cast<size_t>(kHeavyCount), kHeavyItem);

  Stream combined = before;
  combined.insert(combined.end(), after.begin(), after.end());
  const Oracle oracle(combined);
  const SizedTenant sized = SizeTenant(oracle, 21);
  const std::string tenant = "delta";

  SfqClient client = MustConnect();
  ASSERT_TRUE(client.CreateTenant(tenant, sized.spec).ok());
  ASSERT_TRUE(client.Ingest(tenant, std::span<const ItemId>(before)).ok());
  auto marked = client.MarkEpoch(tenant);
  ASSERT_TRUE(marked.ok()) << marked.status().ToString();
  ASSERT_TRUE(client.Ingest(tenant, std::span<const ItemId>(after)).ok());
  ASSERT_TRUE(client.Seal(tenant).ok());

  auto changes = client.MaxChange(tenant, 5);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  ASSERT_FALSE(changes->empty());
  EXPECT_EQ(changes->front().item, kHeavyItem);
  const Oracle delta_oracle(after);
  const Count true_delta = delta_oracle.CountOf(kHeavyItem);
  EXPECT_NEAR(static_cast<double>(changes->front().count),
              static_cast<double>(true_delta), 0.2 * true_delta);
}

// Lifecycle errors come back as clean statuses on a connection that stays
// usable: unknown tenants, double creation, ingest-after-seal, zero k.
TEST_F(ServerE2eTest, LifecycleErrorsAreCleanAndNonFatal) {
  SfqClient client = MustConnect();
  EXPECT_TRUE(client.TopK("ghost", 5).status().IsNotFound());
  EXPECT_TRUE(client.Seal("ghost").status().IsNotFound());

  TenantSpec spec;
  spec.threads = 1;
  ASSERT_TRUE(client.CreateTenant("once", spec).ok());
  EXPECT_TRUE(client.CreateTenant("once", spec).IsInvalidArgument());

  const Stream stream = MakeZipfStream(2000, 3);
  ASSERT_TRUE(client.Ingest("once", std::span<const ItemId>(stream)).ok());
  ASSERT_TRUE(client.Seal("once").ok());
  EXPECT_TRUE(client.Ingest("once", std::span<const ItemId>(stream))
                  .IsInvalidArgument());
  EXPECT_TRUE(client.TopK("once", 0).status().IsInvalidArgument());
  EXPECT_TRUE(client.MaxChange("once", 5).status().IsInvalidArgument())
      << "maxchange without a mark must fail cleanly";

  // The same connection still answers after every rejection above.
  uint64_t epoch = 0;
  auto estimate = client.Estimate("once", stream[0], &epoch);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  ASSERT_TRUE(client.DropTenant("once").ok());
  EXPECT_TRUE(client.Estimate("once", 1).status().IsNotFound());
}

}  // namespace
}  // namespace streamfreq
