#include "core/sketch_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamfreq {
namespace {

ApproxTopSpec ValidSpec() {
  ApproxTopSpec spec;
  spec.stream_length = 1000000;
  spec.k = 100;
  spec.epsilon = 0.1;
  spec.delta = 0.01;
  spec.residual_f2 = 1e8;
  spec.nk = 1000.0;
  return spec;
}

TEST(SizeForApproxTopTest, RejectsBadInputs) {
  auto spec = ValidSpec();
  spec.stream_length = 0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.k = 0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.epsilon = 0.0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.epsilon = 1.0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.delta = 0.0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.nk = 0.0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
  spec = ValidSpec();
  spec.residual_f2 = -1.0;
  EXPECT_TRUE(SizeForApproxTop(spec).status().IsInvalidArgument());
}

TEST(SizeForApproxTopTest, DepthIsLogNOverDelta) {
  auto spec = ValidSpec();
  auto sizing = SizeForApproxTop(spec);
  ASSERT_TRUE(sizing.ok());
  EXPECT_EQ(sizing->depth,
            static_cast<size_t>(std::ceil(std::log2(1000000.0 / 0.01))));
}

TEST(SizeForApproxTopTest, WidthUsesLemma5Max) {
  auto spec = ValidSpec();
  // collision term: 256 * 1e8 / (0.1*1000)^2 = 256e8 / 1e4 = 2.56e6 > 8k.
  auto sizing = SizeForApproxTop(spec);
  ASSERT_TRUE(sizing.ok());
  EXPECT_EQ(sizing->width, static_cast<size_t>(2.56e6));

  // Tiny residual: the 8k arm dominates.
  spec.residual_f2 = 1.0;
  sizing = SizeForApproxTop(spec);
  ASSERT_TRUE(sizing.ok());
  EXPECT_EQ(sizing->width, 8u * 100u);
}

TEST(SizeForApproxTopTest, GammaConsistentWithWidth) {
  auto spec = ValidSpec();
  auto sizing = SizeForApproxTop(spec);
  ASSERT_TRUE(sizing.ok());
  EXPECT_DOUBLE_EQ(
      sizing->gamma,
      std::sqrt(spec.residual_f2 / static_cast<double>(sizing->width)));
  // Lemma 5's purpose: 16 * gamma <= eps * nk.
  EXPECT_LE(16.0 * sizing->gamma, spec.epsilon * spec.nk);
}

TEST(ZipfWidthTest, MatchesSection41Regimes) {
  constexpr size_t k = 100;
  constexpr uint64_t m = 1000000;
  // z > 1/2: b = k.
  EXPECT_EQ(ZipfWidth(1.0, k, m), k);
  EXPECT_EQ(ZipfWidth(0.75, k, m), k);
  // z = 1/2: b = k log m.
  EXPECT_EQ(ZipfWidth(0.5, k, m),
            static_cast<size_t>(std::ceil(k * std::log(1e6))));
  // z < 1/2: b = m^{1-2z} k^{2z}, decreasing in z.
  EXPECT_GT(ZipfWidth(0.1, k, m), ZipfWidth(0.3, k, m));
  EXPECT_GT(ZipfWidth(0.3, k, m), ZipfWidth(0.49, k, m));
  // z = 0 degenerates to m.
  EXPECT_EQ(ZipfWidth(0.0, k, m), m);
}

TEST(ZipfTrackedCountTest, MatchesFormulaAndClamps) {
  // l = k / (1-eps)^{1/z}.
  EXPECT_EQ(ZipfTrackedCount(1.0, 100, 0.5), 200u);
  EXPECT_EQ(ZipfTrackedCount(0.5, 100, 0.5), 400u);
  // Tiny epsilon: clamp to k+1.
  EXPECT_EQ(ZipfTrackedCount(1.0, 100, 1e-9), 101u);
}

TEST(Table1Test, CountSketchBeatsSamplingBelowZOne) {
  // The paper's conclusion: for z < 1, Count-Sketch space is asymptotically
  // smaller. At m = 1e8 (large), the gap must show at z = 0.75.
  constexpr size_t k = 100;
  constexpr uint64_t m = 100000000;
  constexpr uint64_t n = 1000000000;
  EXPECT_LT(Table1CountSketchSpace(0.75, k, m, n),
            Table1SamplingSpace(0.75, k, m));
  EXPECT_LT(Table1CountSketchSpace(0.6, k, m, n),
            Table1SamplingSpace(0.6, k, m));
}

TEST(Table1Test, SamplingSpaceGrowsWithUniverseBelowZOne) {
  constexpr size_t k = 100;
  EXPECT_GT(Table1SamplingSpace(0.5, k, 1u << 26),
            Table1SamplingSpace(0.5, k, 1u << 20));
  // For z > 1 SAMPLING is universe-independent.
  EXPECT_DOUBLE_EQ(Table1SamplingSpace(1.5, k, 1u << 26),
                   Table1SamplingSpace(1.5, k, 1u << 20));
}

TEST(Table1Test, KpsSpaceMatchesRegimes) {
  constexpr size_t k = 100;
  constexpr uint64_t m = 1000000;
  EXPECT_DOUBLE_EQ(Table1KpsSpace(0.5, k, m),
                   std::pow(100.0, 0.5) * std::pow(1e6, 0.5));
  EXPECT_DOUBLE_EQ(Table1KpsSpace(1.0, k, m), 100.0 * std::log(1e6));
  EXPECT_DOUBLE_EQ(Table1KpsSpace(2.0, k, m), std::pow(100.0, 2.0));
}

TEST(Table1Test, CountSketchSpaceFlatInUniverseAboveHalf) {
  constexpr size_t k = 100;
  constexpr uint64_t n = 1u << 30;
  EXPECT_DOUBLE_EQ(Table1CountSketchSpace(1.0, k, 1u << 20, n),
                   Table1CountSketchSpace(1.0, k, 1u << 26, n));
}

}  // namespace
}  // namespace streamfreq
