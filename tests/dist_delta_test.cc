// Delta-shipping protocol tests (satellite of the distributed merge tree,
// docs/DISTRIBUTED.md): the codec's corruption matrix at every truncation
// boundary, the channel's resend-verbatim/cumulative-ack discipline, the
// receiver's WAL-style dedup, and an end-to-end severed-link schedule
// proving at-most-once accounting through MergeTreeSim.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "dist/delta.h"
#include "dist/merge_tree.h"
#include "dist/tree.h"
#include "stream/zipf.h"
#include "util/failpoint.h"

namespace streamfreq {
namespace {

CountSketchParams SmallParams() {
  CountSketchParams params;
  params.depth = 3;
  params.width = 64;
  params.seed = 9;
  return params;
}

DeltaPayload SamplePayload() {
  DeltaPayload delta;
  delta.node_id = 4;
  delta.seqno = 7;
  delta.final_flag = true;
  delta.epoch_mark = false;
  delta.ledger = DistLedger{100, 10, 80, 10};
  delta.covered = {{2, 50}, {3, 30}};
  delta.candidates = {11, 22, 33};
  auto sketch = CountSketch::Make(SmallParams());
  EXPECT_TRUE(sketch.ok());
  sketch->Add(11, 5);
  sketch->SerializeTo(&delta.sketch_blob);
  return delta;
}

TEST(DeltaCodecTest, RoundTripsEveryField) {
  const DeltaPayload delta = SamplePayload();
  auto decoded = DecodeDelta(EncodeDelta(delta));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->node_id, delta.node_id);
  EXPECT_EQ(decoded->seqno, delta.seqno);
  EXPECT_EQ(decoded->final_flag, delta.final_flag);
  EXPECT_EQ(decoded->epoch_mark, delta.epoch_mark);
  EXPECT_TRUE(decoded->ledger == delta.ledger);
  EXPECT_EQ(decoded->covered, delta.covered);
  EXPECT_EQ(decoded->candidates, delta.candidates);
  EXPECT_EQ(decoded->sketch_blob, delta.sketch_blob);
}

TEST(DeltaCodecTest, EveryTruncationBoundaryIsCorruption) {
  // The same discipline the server protocol test applies to RPC frames: a
  // torn payload must fail at EVERY prefix length, never crash, never
  // half-decode. (In the live tree a torn frame dies at the transport CRC;
  // this matrix is the defense in depth behind it.)
  const std::string encoded = EncodeDelta(SamplePayload());
  ASSERT_GT(encoded.size(), 0u);
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    auto decoded = DecodeDelta(std::string_view(encoded).substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption())
        << "prefix " << keep << ": " << decoded.status().ToString();
  }
  // Trailing garbage after a complete payload is equally fatal.
  auto padded = DecodeDelta(encoded + std::string(1, '\0'));
  EXPECT_TRUE(padded.status().IsCorruption());
}

TEST(DeltaCodecTest, RejectsBadMagicFlagsSeqnoAndLedger) {
  DeltaPayload delta = SamplePayload();
  std::string encoded = EncodeDelta(delta);
  encoded[0] ^= 0x01;  // magic
  EXPECT_TRUE(DecodeDelta(encoded).status().IsCorruption());

  DeltaPayload zero_seq = SamplePayload();
  zero_seq.seqno = 0;
  EXPECT_TRUE(DecodeDelta(EncodeDelta(zero_seq)).status().IsCorruption());

  // Unknown flag bits mean a newer (or forged) sender; reject, don't guess.
  std::string flagged = EncodeDelta(SamplePayload());
  flagged[24] |= 0x04;  // flags field: u64 at offset 24, bit2 undefined
  EXPECT_TRUE(DecodeDelta(flagged).status().IsCorruption());

  DeltaPayload bad_ledger = SamplePayload();
  bad_ledger.ledger = DistLedger{100, 0, 80, 0};  // 100 != 80 + 0
  EXPECT_TRUE(DecodeDelta(EncodeDelta(bad_ledger)).status().IsCorruption());
}

TEST(DeltaCodecTest, AckRoundTripAndTruncation) {
  const std::string encoded = EncodeAck(41);
  auto decoded = DecodeAck(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 41u);
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    EXPECT_TRUE(DecodeAck(std::string_view(encoded).substr(0, keep))
                    .status()
                    .IsCorruption())
        << "ack prefix " << keep;
  }
  EXPECT_TRUE(DecodeAck(encoded + "x").status().IsCorruption());
}

TEST(DeltaChannelTest, ResendsPendingVerbatimUntilAcked) {
  auto zero = CountSketch::Make(SmallParams());
  ASSERT_TRUE(zero.ok());
  DeltaChannel channel(3, *zero);

  CountSketch current = *zero;
  DistLedger ledger;
  EXPECT_TRUE(channel.NothingToShip(ledger, false));
  auto quiet = channel.Ship(current, ledger, {}, {}, false);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(quiet->has_value());

  current.Add(5, 2);
  ledger = DistLedger{2, 0, 2, 0};
  auto first = channel.Ship(current, ledger, {{3, 2}}, {5}, false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_TRUE(channel.has_pending());

  // The sender keeps advancing, but until the ack arrives the SAME bytes
  // go out — bit-identical re-delivery is what makes dedup exact.
  current.Add(6, 1);
  ledger = DistLedger{3, 0, 3, 0};
  auto resend = channel.Ship(current, ledger, {{3, 3}}, {5, 6}, false);
  ASSERT_TRUE(resend.ok());
  ASSERT_TRUE(resend->has_value());
  EXPECT_EQ(**resend, **first);

  // Cumulative ack folds the pending delta into the base; the next ship
  // carries only what came after it.
  ASSERT_TRUE(channel.Acked(1).ok());
  EXPECT_FALSE(channel.has_pending());
  EXPECT_EQ(channel.acked_seqno(), 1u);
  auto second = channel.Ship(current, ledger, {{3, 3}}, {5, 6}, false);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  auto decoded = DecodeDelta(**second);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seqno, 2u);
  EXPECT_EQ(decoded->ledger.ingested, 1u);  // the post-ack increment only

  // A stale cumulative ack (receiver re-acking the old seqno after a
  // dropped delivery) is a no-op, not an error.
  ASSERT_TRUE(channel.Acked(1).ok());
  EXPECT_TRUE(channel.has_pending());

  // Acks from the future or going backwards mean a corrupt peer.
  EXPECT_TRUE(channel.Acked(9).IsCorruption());
  ASSERT_TRUE(channel.Acked(2).ok());
  EXPECT_TRUE(channel.Acked(1).IsCorruption());
}

TEST(DeltaChannelTest, FinalFlagLatchesOnAck) {
  auto zero = CountSketch::Make(SmallParams());
  ASSERT_TRUE(zero.ok());
  DeltaChannel channel(2, *zero);
  CountSketch current = *zero;
  current.Add(1);
  const DistLedger ledger{1, 0, 1, 0};
  auto fin = channel.Ship(current, ledger, {{2, 1}}, {1}, true);
  ASSERT_TRUE(fin.ok());
  ASSERT_TRUE(fin->has_value());
  auto decoded = DecodeDelta(**fin);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->final_flag);
  EXPECT_FALSE(channel.NothingToShip(ledger, true));
  ASSERT_TRUE(channel.Acked(1).ok());
  // Latched: nothing new + final acked = quiet forever.
  EXPECT_TRUE(channel.NothingToShip(ledger, true));
  auto quiet = channel.Ship(current, ledger, {{2, 1}}, {1}, true);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(quiet->has_value());
}

TEST(DeltaReceiverTest, WalDisciplineDedupsAndRejectsGaps) {
  DeltaReceiver receiver;
  bool duplicate = true;
  ASSERT_TRUE(receiver.Classify(1, &duplicate).ok());
  EXPECT_FALSE(duplicate);
  receiver.Applied(1);

  // Re-delivery of an applied seqno: skip, exactly once.
  ASSERT_TRUE(receiver.Classify(1, &duplicate).ok());
  EXPECT_TRUE(duplicate);
  receiver.CountDuplicate();

  ASSERT_TRUE(receiver.Classify(2, &duplicate).ok());
  EXPECT_FALSE(duplicate);
  receiver.Applied(2);

  // An out-of-order stale frame (reordered re-delivery) is a duplicate too.
  ASSERT_TRUE(receiver.Classify(1, &duplicate).ok());
  EXPECT_TRUE(duplicate);

  // A gap cannot happen under resend-verbatim; treat it as corruption.
  EXPECT_TRUE(receiver.Classify(4, &duplicate).IsCorruption());
  EXPECT_EQ(receiver.last_applied(), 2u);
  EXPECT_EQ(receiver.duplicates(), 1u);
}

// End-to-end: a planted severed-link + lost-ack schedule. Severs delay
// mass, they never lose it — so after enough rounds the tree must converge
// to full coverage with every re-delivered delta deduped, and the root must
// be bit-identical to a clean flat merge.
TEST(DistDeltaE2ETest, SeveredLinksForceResendsButAccountingIsExact) {
  auto topo = BuildBalancedTree(/*workers=*/6, /*fanout=*/2);
  ASSERT_TRUE(topo.ok());
  const CountSketchParams params = SmallParams();
  auto sim = MergeTreeSim::Make(*topo, params, /*tracked=*/16);
  ASSERT_TRUE(sim.ok());

  // Half the ship frames die in flight, a third of the acks vanish. No
  // budget exhaustion: probabilities only, so resends keep being tested.
  ScopedFailpoints failpoints("dist.ship=error@0.5;dist.ack=error@0.34",
                              /*seed=*/99);
  ASSERT_TRUE(failpoints.status().ok());

  std::vector<Stream> streams;
  for (uint64_t leaf = 0; leaf < 6; ++leaf) {
    auto gen = ZipfGenerator::Make(500, 1.1, 17 * (leaf + 1));
    ASSERT_TRUE(gen.ok());
    streams.push_back(gen->Take(2000));
  }
  const auto& leaves = sim->topology().leaves;
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t off = 0; off < streams[i].size(); off += 256) {
      const size_t len = std::min<size_t>(256, streams[i].size() - off);
      ASSERT_TRUE(
          sim->Offer(leaves[i], std::span<const ItemId>(
                                    streams[i].data() + off, len))
              .ok());
      auto round = sim->ShipRound();
      ASSERT_TRUE(round.ok());
    }
  }
  sim->Seal();
  ASSERT_TRUE(sim->Drain(/*max_rounds=*/400).ok());
  ASSERT_TRUE(sim->Quiescent());

  const MergeTreeStats& stats = sim->stats();
  EXPECT_GT(stats.severed_links, 0u);
  EXPECT_GT(stats.lost_acks, 0u);
  EXPECT_GT(stats.delta_dedups, 0u);  // lost acks force dup deliveries

  ASSERT_TRUE(sim->CheckInvariants().ok()) << sim->CheckInvariants().ToString();

  // No admission faults were armed, so nothing was rejected or shed: the
  // tree converged to FULL coverage and the root must equal the flat merge.
  const DistLedger ledger = sim->root_ledger();
  EXPECT_EQ(ledger.offered, 6u * 2000u);
  EXPECT_EQ(ledger.ingested, 6u * 2000u);
  EXPECT_EQ(ledger.rejected, 0u);
  EXPECT_EQ(ledger.dropped, 0u);

  auto flat = CountSketch::Make(params);
  ASSERT_TRUE(flat.ok());
  for (const Stream& s : streams) flat->BatchAdd(s);
  std::string root_bytes, flat_bytes;
  sim->root_sketch().SerializeTo(&root_bytes);
  flat->SerializeTo(&flat_bytes);
  EXPECT_EQ(root_bytes, flat_bytes);
}

// Dropped deliveries re-ack the OLD cumulative seqno: the sender resends,
// the receiver applies exactly once. dist.deliver exercises the reorder/
// duplicate path end to end at the apply layer (below the CRC transport).
TEST(DistDeltaE2ETest, DroppedDeliveriesAreAppliedExactlyOnce) {
  auto topo = BuildBalancedTree(/*workers=*/4, /*fanout=*/0);
  ASSERT_TRUE(topo.ok());
  const CountSketchParams params = SmallParams();
  auto sim = MergeTreeSim::Make(*topo, params, /*tracked=*/16);
  ASSERT_TRUE(sim.ok());

  ScopedFailpoints failpoints("dist.deliver=error@0.5", /*seed=*/7);
  ASSERT_TRUE(failpoints.status().ok());

  std::vector<Stream> streams;
  for (uint64_t leaf = 0; leaf < 4; ++leaf) {
    auto gen = ZipfGenerator::Make(300, 1.0, 29 * (leaf + 1));
    ASSERT_TRUE(gen.ok());
    streams.push_back(gen->Take(1500));
  }
  const auto& leaves = sim->topology().leaves;
  for (size_t i = 0; i < leaves.size(); ++i) {
    ASSERT_TRUE(sim->Offer(leaves[i], streams[i]).ok());
  }
  sim->Seal();
  ASSERT_TRUE(sim->Drain(/*max_rounds=*/200).ok());
  ASSERT_TRUE(sim->Quiescent());

  EXPECT_GT(sim->stats().dropped_deliveries, 0u);
  ASSERT_TRUE(sim->CheckInvariants().ok()) << sim->CheckInvariants().ToString();
  EXPECT_EQ(sim->root_ledger().ingested, 4u * 1500u);

  auto flat = CountSketch::Make(params);
  ASSERT_TRUE(flat.ok());
  for (const Stream& s : streams) flat->BatchAdd(s);
  std::string root_bytes, flat_bytes;
  sim->root_sketch().SerializeTo(&root_bytes);
  flat->SerializeTo(&flat_bytes);
  EXPECT_EQ(root_bytes, flat_bytes);
}

// Torn and bit-flipped frames must die at the transport CRC and count as
// severs — a tampered frame reaching the apply path would be a dedup hole.
TEST(DistDeltaE2ETest, TamperedFramesDieAtTheCrc) {
  for (const char* spec : {"dist.ship=torn*4", "dist.ship=bitflip:3*4"}) {
    auto topo = BuildBalancedTree(/*workers=*/3, /*fanout=*/0);
    ASSERT_TRUE(topo.ok());
    auto sim = MergeTreeSim::Make(*topo, SmallParams(), /*tracked=*/8);
    ASSERT_TRUE(sim.ok());

    ScopedFailpoints failpoints(spec, /*seed=*/5);
    ASSERT_TRUE(failpoints.status().ok());

    std::vector<Stream> streams;
    for (uint64_t leaf = 0; leaf < 3; ++leaf) {
      auto gen = ZipfGenerator::Make(200, 1.0, 31 * (leaf + 1));
      ASSERT_TRUE(gen.ok());
      streams.push_back(gen->Take(1000));
    }
    const auto& leaves = sim->topology().leaves;
    for (size_t i = 0; i < leaves.size(); ++i) {
      ASSERT_TRUE(sim->Offer(leaves[i], streams[i]).ok());
    }
    sim->Seal();
    ASSERT_TRUE(sim->Drain(/*max_rounds=*/200).ok());

    EXPECT_GT(sim->stats().severed_links, 0u) << spec;
    ASSERT_TRUE(sim->CheckInvariants().ok())
        << spec << ": " << sim->CheckInvariants().ToString();
    EXPECT_EQ(sim->root_ledger().ingested, 3u * 1000u) << spec;
  }
}

}  // namespace
}  // namespace streamfreq
