#include "core/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(SamplingTest, RejectsBadProbability) {
  EXPECT_TRUE(SamplingSummary::Make(0.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SamplingSummary::Make(1.5, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SamplingSummary::Make(-0.1, 1).status().IsInvalidArgument());
}

TEST(SamplingTest, ProbabilityOneIsExact) {
  auto s = SamplingSummary::Make(1.0, 1);
  ASSERT_TRUE(s.ok());
  s->Add(1, 10);
  s->Add(2, 7);
  EXPECT_EQ(s->Estimate(1), 10);
  EXPECT_EQ(s->Estimate(2), 7);
  EXPECT_EQ(s->DistinctSampled(), 2u);
}

TEST(SamplingTest, EstimateRoughlyUnbiased) {
  auto gen = ZipfGenerator::Make(1000, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(100000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto s = SamplingSummary::Make(0.05, 77);
  ASSERT_TRUE(s.ok());
  s->AddAll(stream);

  const ItemId head = gen->IdForRank(1);
  const double truth = static_cast<double>(oracle.CountOf(head));
  // Binomial(truth, 0.05) scaled by 1/0.05: stddev = sqrt(truth*p*(1-p))/p.
  const double sigma = std::sqrt(truth * 0.05 * 0.95) / 0.05;
  EXPECT_NEAR(static_cast<double>(s->Estimate(head)), truth, 6 * sigma);
}

TEST(SamplingTest, SampleSizeNearExpectation) {
  auto gen = ZipfGenerator::Make(100000, 0.0, 5);  // uniform: worst case
  ASSERT_TRUE(gen.ok());
  auto s = SamplingSummary::Make(0.01, 9);
  ASSERT_TRUE(s.ok());
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) s->Add(gen->Next());
  // Expected sampled occurrences = 2000; distinct <= that.
  EXPECT_LT(s->DistinctSampled(), 2600u);
  EXPECT_GT(s->DistinctSampled(), 1400u);
}

TEST(SamplingTest, LowFrequencyItemsPolluteCandidates) {
  // The paper's point: SAMPLING cannot guarantee ApproxTop because rare
  // items picked up by chance ride the candidate list with inflated
  // estimates. With p small, a singleton sampled once estimates 1/p.
  auto s = SamplingSummary::Make(0.001, 11);
  ASSERT_TRUE(s.ok());
  // 5000 singletons: ~5 get sampled, each estimating 1000.
  for (ItemId q = 1; q <= 5000; ++q) s->Add(q);
  s->Add(999999, 400);  // the actually-frequent item
  const auto candidates = s->Candidates(10);
  bool singleton_outranks_heavy = false;
  for (const ItemCount& ic : candidates) {
    if (ic.item != 999999 && ic.count >= 400) singleton_outranks_heavy = true;
  }
  EXPECT_TRUE(singleton_outranks_heavy)
      << "sampled singletons should (mis)rank above the heavy item";
}

TEST(ConciseSamplingTest, RejectsZeroBudget) {
  EXPECT_TRUE(ConciseSampling::Make(0, 1).status().IsInvalidArgument());
}

TEST(ConciseSamplingTest, RespectsEntryBudget) {
  auto gen = ZipfGenerator::Make(50000, 0.0, 3);
  ASSERT_TRUE(gen.ok());
  auto cs = ConciseSampling::Make(500, 7);
  ASSERT_TRUE(cs.ok());
  for (int i = 0; i < 100000; ++i) {
    cs->Add(gen->Next());
  }
  EXPECT_LE(cs->SpaceBytes() / 24, 500u);
  EXPECT_GT(cs->tau(), 1.0) << "threshold must have risen under pressure";
}

TEST(ConciseSamplingTest, HeavyItemEstimateTracksTruth) {
  auto cs = ConciseSampling::Make(100, 9);
  ASSERT_TRUE(cs.ok());
  for (int i = 0; i < 10000; ++i) {
    cs->Add(1);
    cs->Add(static_cast<ItemId>(100 + (i % 5000)));  // churn
  }
  const double est = static_cast<double>(cs->Estimate(1));
  EXPECT_NEAR(est, 10000.0, 3000.0);
}

TEST(CountingSamplingTest, RejectsZeroBudget) {
  EXPECT_TRUE(CountingSampling::Make(0, 1).status().IsInvalidArgument());
}

TEST(CountingSamplingTest, ExactOnceAdmittedAtRateOne) {
  auto cs = CountingSampling::Make(100, 5);
  ASSERT_TRUE(cs.ok());
  // tau = 1: first occurrence admits; all later occurrences exact.
  for (int i = 0; i < 50; ++i) cs->Add(42);
  EXPECT_EQ(cs->Estimate(42), 50);
}

TEST(CountingSamplingTest, RespectsEntryBudgetAndBeatsConciseAccuracy) {
  auto gen = ZipfGenerator::Make(20000, 1.0, 13);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(100000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  auto counting = CountingSampling::Make(300, 7);
  auto concise = ConciseSampling::Make(300, 7);
  ASSERT_TRUE(counting.ok() && concise.ok());
  counting->AddAll(stream);
  concise->AddAll(stream);

  // Counting samples keep exact tails: their top-1 estimate should be at
  // least as close to truth as concise samples' (allow equality).
  const ItemId head = gen->IdForRank(1);
  const double truth = static_cast<double>(oracle.CountOf(head));
  const double counting_err =
      std::abs(static_cast<double>(counting->Estimate(head)) - truth);
  const double concise_err =
      std::abs(static_cast<double>(concise->Estimate(head)) - truth);
  EXPECT_LE(counting_err, concise_err + truth * 0.05)
      << "counting samples should not be materially worse on the head";
}

TEST(StickySamplingTest, RejectsBadParameters) {
  EXPECT_TRUE(StickySampling::Make(0.0, 0.001, 0.1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(StickySampling::Make(0.01, 0.02, 0.1, 1).status().IsInvalidArgument())
      << "epsilon must be below support";
  EXPECT_TRUE(StickySampling::Make(0.01, 0.001, 0.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(StickySampling::Make(1.0, 0.001, 0.1, 1).status().IsInvalidArgument());
}

TEST(StickySamplingTest, NeverOverestimates) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 17);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(30000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto st = StickySampling::Make(0.01, 0.002, 0.1, 3);
  ASSERT_TRUE(st.ok());
  st->AddAll(stream);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_LE(st->Estimate(item), count);
  }
}

TEST(StickySamplingTest, FindsSupportThresholdItems) {
  auto gen = ZipfGenerator::Make(2000, 1.2, 19);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  const double support = 0.01;
  const double eps = 0.002;
  auto st = StickySampling::Make(support, eps, 0.05, 5);
  ASSERT_TRUE(st.ok());
  st->AddAll(stream);

  // Guarantee: items with f >= s*n have estimate >= (s - eps)*n w.h.p.
  const double n = static_cast<double>(stream.size());
  for (const auto& [item, count] : oracle.counts()) {
    if (static_cast<double>(count) >= support * n) {
      EXPECT_GE(static_cast<double>(st->Estimate(item)), (support - eps) * n)
          << "support item undercounted beyond eps";
    }
  }
}

}  // namespace
}  // namespace streamfreq
