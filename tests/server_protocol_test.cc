// Protocol battery for `sfq serve`: round-trips for every opcode, plus the
// corruption matrix — truncation at every byte boundary, a bit flip in
// every header position, payload damage — all of which must come back as a
// clean error Status (never a crash, never a giant allocation; the suite
// also runs under ASan/UBSan via scripts/check.sh).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "server/net.h"
#include "util/bytes.h"

namespace streamfreq {
namespace {

Request SampleRequest(Opcode op) {
  Request request;
  request.op = op;
  if (OpcodeNeedsTenant(op)) request.tenant = "tenant-A.1";
  switch (op) {
    case Opcode::kCreateTenant:
      request.spec.seed = 77;
      request.spec.threads = 3;
      request.spec.push_timeout_ms = 5;
      request.spec.policy = OverflowPolicy::kShed;
      request.spec.tracked = 128;
      break;
    case Opcode::kIngest:
      request.items = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL, 42};
      break;
    case Opcode::kTopK:
    case Opcode::kMaxChange:
      request.k = 10;
      break;
    case Opcode::kEstimate:
      request.item = 0xDEADBEEFULL;
      break;
    default:
      break;
  }
  return request;
}

Response SampleResponse() {
  Response response;
  response.epoch = 41;
  response.value = -7;
  response.entries = {{1, 100}, {2, -50}, {3, 25}};
  response.blob = std::string("sketch-bytes\0with-nul", 21);
  return response;
}

TEST(OpcodeRegistryTest, TableIsDenseAndComplete) {
  const std::span<const OpcodeInfo> table = OpcodeTable();
  ASSERT_EQ(table.size(), kOpcodeCount);
  for (size_t i = 0; i < table.size(); ++i) {
    // Rows sit at their wire value: the table IS the numbering.
    EXPECT_EQ(static_cast<size_t>(table[i].op), i);
    ASSERT_NE(table[i].name, nullptr);
    EXPECT_STRNE(table[i].name, "");

    auto by_raw = LookupOpcode(static_cast<uint64_t>(i));
    ASSERT_TRUE(by_raw.ok());
    EXPECT_EQ(*by_raw, table[i].op);

    auto by_name = OpcodeFromName(table[i].name);
    ASSERT_TRUE(by_name.ok()) << table[i].name;
    EXPECT_EQ(*by_name, table[i].op);

    EXPECT_STREQ(OpcodeName(table[i].op), table[i].name);
    EXPECT_EQ(OpcodeNeedsTenant(table[i].op), table[i].needs_tenant);
  }
  // Names are unique.
  for (size_t i = 0; i < table.size(); ++i) {
    for (size_t j = i + 1; j < table.size(); ++j) {
      EXPECT_STRNE(table[i].name, table[j].name);
    }
  }
}

TEST(OpcodeRegistryTest, UnregisteredValuesAreInvalidArgument) {
  EXPECT_TRUE(LookupOpcode(kOpcodeCount).status().IsInvalidArgument());
  EXPECT_TRUE(LookupOpcode(~uint64_t{0}).status().IsInvalidArgument());
  EXPECT_TRUE(OpcodeFromName("").status().IsInvalidArgument());
  EXPECT_TRUE(OpcodeFromName("frobnicate").status().IsInvalidArgument());
}

TEST(PolicyWireTest, RoundTripsAndRejectsUnknown) {
  for (OverflowPolicy policy : {OverflowPolicy::kBlock, OverflowPolicy::kShed,
                                OverflowPolicy::kSample}) {
    auto from_wire = PolicyFromWire(PolicyToWire(policy));
    ASSERT_TRUE(from_wire.ok());
    EXPECT_EQ(*from_wire, policy);
    auto from_name = PolicyFromName(PolicyName(policy));
    ASSERT_TRUE(from_name.ok());
    EXPECT_EQ(*from_name, policy);
  }
  EXPECT_TRUE(PolicyFromWire(99).status().IsInvalidArgument());
  EXPECT_TRUE(PolicyFromName("fifo").status().IsInvalidArgument());
}

TEST(TenantNameTest, ValidatesCharsetAndLength) {
  EXPECT_TRUE(ValidTenantName("a"));
  EXPECT_TRUE(ValidTenantName("Tenant_0.9-x"));
  EXPECT_TRUE(ValidTenantName(std::string(64, 'z')));
  EXPECT_FALSE(ValidTenantName(""));
  EXPECT_FALSE(ValidTenantName(std::string(65, 'z')));
  EXPECT_FALSE(ValidTenantName("has space"));
  EXPECT_FALSE(ValidTenantName("slash/y"));
  EXPECT_FALSE(ValidTenantName(std::string("nul\0byte", 8)));
  EXPECT_FALSE(ValidTenantName("quote\"y"));
}

TEST(FrameTest, RoundTripsPayloads) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string(100000, 'q'),
        std::string("\0\xff\x7f", 3)}) {
    const std::string frame = EncodeFrame(payload);
    ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
    std::string decoded;
    ASSERT_TRUE(DecodeFrame(frame, &decoded).ok());
    EXPECT_EQ(decoded, payload);
  }
}

TEST(FrameTest, TruncationAtEveryBoundaryIsCorruption) {
  const std::string frame = EncodeFrame("corruption matrix payload");
  std::string decoded;
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_TRUE(DecodeFrame(frame.substr(0, len), &decoded).IsCorruption())
        << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage after a valid frame is damage too.
  EXPECT_TRUE(DecodeFrame(frame + "x", &decoded).IsCorruption());
}

TEST(FrameTest, EveryHeaderBitFlipIsCorruption) {
  const std::string frame = EncodeFrame("bit flip battery");
  std::string decoded;
  for (size_t byte = 0; byte < kFrameHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_TRUE(DecodeFrame(damaged, &decoded).IsCorruption())
          << "flip at header byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameTest, EveryPayloadBitFlipIsCorruption) {
  const std::string frame = EncodeFrame("payload flip battery");
  std::string decoded;
  for (size_t byte = kFrameHeaderSize; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_TRUE(DecodeFrame(damaged, &decoded).IsCorruption())
          << "flip at payload byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameTest, OversizedDeclaredLengthIsCorruptionNotAllocation) {
  // Craft a header that declares a payload beyond kMaxPayloadBytes; the
  // parser must reject on the bound, before trusting the length.
  std::string header;
  ByteWriter writer(&header);
  writer.PutU64(kFrameMagic);
  writer.PutU64(kMaxPayloadBytes + 1);
  writer.PutBytes("\0\0\0\0", 4);
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  EXPECT_TRUE(ParseFrameHeader(header, &payload_len, &crc).IsCorruption());
}

TEST(RequestTest, RoundTripsEveryOpcode) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    const Request request = SampleRequest(info.op);
    std::string payload;
    request.EncodeTo(&payload);
    auto decoded = Request::Decode(payload);
    ASSERT_TRUE(decoded.ok()) << info.name << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(*decoded, request) << info.name;
  }
}

TEST(RequestTest, TruncationAtEveryBoundaryFailsCleanly) {
  for (const OpcodeInfo& info : OpcodeTable()) {
    std::string payload;
    SampleRequest(info.op).EncodeTo(&payload);
    for (size_t len = 0; len < payload.size(); ++len) {
      auto decoded = Request::Decode(payload.substr(0, len));
      EXPECT_FALSE(decoded.ok())
          << info.name << ": prefix of " << len << " bytes decoded";
    }
    // Trailing bytes mean the decoder lost sync with the encoder.
    auto trailing = Request::Decode(payload + "y");
    EXPECT_FALSE(trailing.ok()) << info.name;
  }
}

TEST(RequestTest, UnregisteredOpcodeIsInvalidArgumentNotCorruption) {
  // A CRC-valid frame carrying an unknown opcode is a protocol-version
  // mismatch, not wire damage: the server answers with an error and keeps
  // the connection (DecodeFrame already vouched for the bytes).
  std::string payload;
  Request ping;
  ping.EncodeTo(&payload);
  std::string unknown = payload;
  unknown[0] = static_cast<char>(kOpcodeCount);  // first field is the opcode
  EXPECT_TRUE(Request::Decode(unknown).status().IsInvalidArgument());
}

TEST(RequestTest, BadTenantNameRejected) {
  Request request = SampleRequest(Opcode::kTopK);
  request.tenant = "bad tenant name!";
  std::string payload;
  request.EncodeTo(&payload);
  EXPECT_TRUE(Request::Decode(payload).status().IsInvalidArgument());
}

TEST(RequestTest, ItemCountMismatchIsCorruption) {
  // Declare more items than the payload carries: the count is checked
  // against the exact remaining bytes before any vector reserve.
  std::string payload;
  SampleRequest(Opcode::kIngest).EncodeTo(&payload);
  // The item array is the final field: u64 count then count * 8 bytes.
  const size_t count_at = payload.size() - 5 * 8 - 8;
  std::string grown = payload.substr(0, count_at);
  ByteWriter writer(&grown);
  writer.PutU64(~uint64_t{0});  // absurd count, no bytes behind it
  EXPECT_TRUE(Request::Decode(grown).status().IsCorruption());
}

TEST(ResponseTest, RoundTripsResultsAndErrors) {
  const Response response = SampleResponse();
  std::string payload;
  response.EncodeTo(&payload);
  auto decoded = Response::Decode(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, response);
  EXPECT_TRUE(decoded->ok());
  EXPECT_TRUE(decoded->ToStatus().ok());

  const Response error =
      Response::FromStatus(Status::NotFound("no such tenant: x"));
  std::string error_payload;
  error.EncodeTo(&error_payload);
  auto error_decoded = Response::Decode(error_payload);
  ASSERT_TRUE(error_decoded.ok());
  EXPECT_FALSE(error_decoded->ok());
  EXPECT_TRUE(error_decoded->ToStatus().IsNotFound());
  EXPECT_EQ(error_decoded->ToStatus().message(), "no such tenant: x");
}

TEST(ResponseTest, TruncationAtEveryBoundaryFailsCleanly) {
  std::string payload;
  SampleResponse().EncodeTo(&payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(Response::Decode(payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_FALSE(Response::Decode(payload + "z").ok());
}

TEST(ResponseTest, UnknownStatusCodeRejected) {
  std::string payload;
  Response().EncodeTo(&payload);
  payload[0] = 99;  // code is the first u64; 99 is beyond kInternal
  EXPECT_FALSE(Response::Decode(payload).ok());
}

// Socket-level EOF discrimination: a peer that hangs up between frames is
// a clean NotFound; one that dies mid-frame is Corruption.
TEST(NetTest, CleanEofVsMidFrameTruncation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OwnedFd reader(fds[0]);
  {
    OwnedFd writer_fd(fds[1]);
    ASSERT_TRUE(SendFrame(writer_fd.get(), "whole frame").ok());
    const std::string frame = EncodeFrame("gets cut short");
    const std::string half = frame.substr(0, frame.size() / 2);
    ASSERT_EQ(::write(writer_fd.get(), half.data(), half.size()),
              static_cast<ssize_t>(half.size()));
  }  // writer closes: EOF after one whole frame and half of another

  auto whole = RecvFrame(reader.get());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ(*whole, "whole frame");
  EXPECT_TRUE(RecvFrame(reader.get()).status().IsCorruption());

  int more[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, more), 0);
  OwnedFd reader2(more[0]);
  { OwnedFd writer2(more[1]); }  // close immediately: EOF at a boundary
  EXPECT_TRUE(RecvFrame(reader2.get()).status().IsNotFound());
}

TEST(NetTest, OversizedSendRejectedBeforeWrite) {
  const std::string too_big(kMaxPayloadBytes + 1, 'x');
  // fd -1: the bound check fires before any write is attempted.
  EXPECT_TRUE(SendFrame(-1, too_big).IsInvalidArgument());
}

}  // namespace
}  // namespace streamfreq
