// Fuzz-style robustness tests: random operation sequences checked against
// the exact-counting reference, and hostile inputs to the parsers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/count_sketch.h"
#include "core/misra_gries.h"
#include "core/sketch_io.h"
#include "core/space_saving.h"
#include "core/stream_summary.h"
#include "hash/random.h"
#include "stream/exact_counter.h"
#include "stream/trace.h"

namespace streamfreq {
namespace {

TEST(RobustnessTest, RandomTurnstileSequenceMatchesReferenceOnSparseKeys) {
  // Few enough keys that sketch collisions are negligible: every estimate
  // must match the signed reference count exactly-ish.
  CountSketchParams p;
  p.depth = 7;
  p.width = 4096;
  p.seed = 1;
  auto sketch = CountSketch::Make(p);
  ASSERT_TRUE(sketch.ok());
  ExactCounter reference;
  Xoshiro256 rng(99);
  for (int op = 0; op < 20000; ++op) {
    const ItemId item = 1 + rng.UniformBelow(20);
    const Count weight =
        static_cast<Count>(rng.UniformBelow(100)) - 50;  // [-50, 49]
    sketch->Add(item, weight);
    reference.Add(item, weight);
  }
  for (ItemId item = 1; item <= 20; ++item) {
    EXPECT_EQ(sketch->Estimate(item), reference.CountOf(item))
        << "item " << item;
  }
}

TEST(RobustnessTest, CounterAlgorithmsSurviveAdversarialOrderings) {
  // Strictly increasing, strictly decreasing, and sawtooth arrival counts
  // stress every eviction path; invariants must hold throughout.
  for (int pattern = 0; pattern < 3; ++pattern) {
    auto mg = MisraGries::Make(8);
    auto ss = SpaceSaving::Make(8);
    auto ssl = StreamSummarySpaceSaving::Make(8);
    ASSERT_TRUE(mg.ok() && ss.ok() && ssl.ok());
    Count total = 0;
    for (int i = 1; i <= 300; ++i) {
      ItemId item;
      if (pattern == 0) {
        item = static_cast<ItemId>(i);  // all distinct
      } else if (pattern == 1) {
        item = static_cast<ItemId>(301 - i);
      } else {
        item = static_cast<ItemId>(i % 17);  // sawtooth reuse
      }
      const Count w = 1 + (i % 5);
      mg->Add(item, w);
      ss->Add(item, w);
      ssl->Add(item, w);
      total += w;
      ASSERT_TRUE(ssl->CheckInvariants()) << "pattern " << pattern << " step " << i;
    }
    Count ss_total = 0;
    for (const ItemCount& ic : ss->Candidates(8)) ss_total += ic.count;
    EXPECT_EQ(ss_total, total) << "Space-Saving mass conservation";
  }
}

TEST(RobustnessTest, DeserializeArbitraryBytesNeverCrashes) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk(rng.UniformBelow(512), '\0');
    for (char& c : junk) c = static_cast<char>(rng.UniformBelow(256));
    auto result = CountSketch::Deserialize(junk);
    // Either corruption or (vanishingly unlikely) a valid small sketch;
    // never a crash.
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCorruption());
    }
  }
}

TEST(RobustnessTest, DeserializeBitflippedRealSketchFailsCleanly) {
  CountSketchParams p;
  p.depth = 3;
  p.width = 64;
  p.seed = 5;
  auto sketch = CountSketch::Make(p);
  ASSERT_TRUE(sketch.ok());
  for (ItemId q = 1; q <= 100; ++q) sketch->Add(q);
  std::string blob;
  sketch->SerializeTo(&blob);

  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    std::string corrupted = blob;
    // Flip a byte in the header region (the payload region would yield a
    // valid sketch with different counters, which is acceptable).
    corrupted[rng.UniformBelow(48)] ^=
        static_cast<char>(1 + rng.UniformBelow(255));
    auto result = CountSketch::Deserialize(corrupted);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCorruption() ||
                  result.status().IsInvalidArgument())
          << result.status().ToString();
    }
  }
}

TEST(RobustnessTest, SketchFileDetectsEveryPayloadBitflip) {
  const std::string path = ::testing::TempDir() + "/sfq_robust.skf";
  CountSketchParams p;
  p.depth = 3;
  p.width = 32;
  p.seed = 5;
  auto sketch = CountSketch::Make(p);
  ASSERT_TRUE(sketch.ok());
  sketch->Add(1, 12345);
  ASSERT_TRUE(WriteSketchFile(path, *sketch).ok());

  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  Xoshiro256 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::string corrupted = data;
    const size_t pos = 20 + rng.UniformBelow(corrupted.size() - 20);
    corrupted[pos] ^= static_cast<char>(1 << rng.UniformBelow(8));
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption())
        << "payload flip at byte " << pos << " not caught";
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, TraceReaderHandlesHugeDeclaredLength) {
  // A header declaring 2^60 items must not trigger a giant allocation
  // crash; the reader should fail with Corruption on the short payload.
  const std::string path = ::testing::TempDir() + "/sfq_hugetrace.bin";
  std::ofstream out(path, std::ios::binary);
  out << "SFQTRC01";
  const uint64_t huge = 1ULL << 40;  // bounded: 8 TiB payload declared
  out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  out << "tiny";
  out.close();
  auto result = ReadTrace(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamfreq
