#include "core/space_saving.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(SpaceSavingTest, RejectsZeroCapacity) {
  EXPECT_TRUE(SpaceSaving::Make(0).status().IsInvalidArgument());
}

TEST(SpaceSavingTest, ExactWhenDistinctFits) {
  auto ss = SpaceSaving::Make(10);
  ASSERT_TRUE(ss.ok());
  for (ItemId q = 1; q <= 10; ++q) ss->Add(q, static_cast<Count>(3 * q));
  for (ItemId q = 1; q <= 10; ++q) {
    EXPECT_EQ(ss->Estimate(q), 3 * static_cast<Count>(q));
    EXPECT_EQ(ss->ErrorOf(q), 0);
  }
}

TEST(SpaceSavingTest, NeverUnderestimatesMonitored) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto ss = SpaceSaving::Make(100);
  ASSERT_TRUE(ss.ok());
  ss->AddAll(stream);
  for (const ItemCount& ic : ss->Candidates(100)) {
    ASSERT_GE(ic.count, oracle.CountOf(ic.item))
        << "Space-Saving counts are upper bounds";
  }
}

TEST(SpaceSavingTest, OverestimateBoundedByError) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 5);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto ss = SpaceSaving::Make(100);
  ASSERT_TRUE(ss.ok());
  ss->AddAll(stream);
  for (const ItemCount& ic : ss->Candidates(100)) {
    ASSERT_LE(ic.count - ss->ErrorOf(ic.item), oracle.CountOf(ic.item))
        << "count - error is a lower bound on the true count";
  }
}

TEST(SpaceSavingTest, MinCountBoundedByNOverC) {
  auto gen = ZipfGenerator::Make(5000, 0.8, 7);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kCap = 64;
  auto ss = SpaceSaving::Make(kCap);
  ASSERT_TRUE(ss.ok());
  constexpr size_t kN = 100000;
  for (size_t i = 0; i < kN; ++i) ss->Add(gen->Next());
  EXPECT_LE(ss->MinCount(), static_cast<Count>(kN / kCap));
}

TEST(SpaceSavingTest, HeavyItemsAlwaysMonitored) {
  auto gen = ZipfGenerator::Make(2000, 1.2, 9);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(60000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  constexpr size_t kCap = 100;
  auto ss = SpaceSaving::Make(kCap);
  ASSERT_TRUE(ss.ok());
  ss->AddAll(stream);

  std::unordered_set<ItemId> monitored;
  for (const ItemCount& ic : ss->Candidates(kCap)) monitored.insert(ic.item);
  const Count threshold =
      static_cast<Count>(stream.size()) / static_cast<Count>(kCap);
  for (const auto& [item, count] : oracle.counts()) {
    if (count > threshold) {
      EXPECT_TRUE(monitored.count(item)) << "heavy item " << item << " evicted";
    }
  }
}

TEST(SpaceSavingTest, MonitoredSetNeverExceedsCapacity) {
  auto gen = ZipfGenerator::Make(10000, 0.3, 11);
  ASSERT_TRUE(gen.ok());
  auto ss = SpaceSaving::Make(32);
  ASSERT_TRUE(ss.ok());
  for (int i = 0; i < 20000; ++i) {
    ss->Add(gen->Next());
    ASSERT_LE(ss->MonitoredCount(), 32u);
  }
}

TEST(SpaceSavingTest, UnmonitoredEstimateIsMinCount) {
  auto ss = SpaceSaving::Make(2);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 10);
  ss->Add(2, 20);
  EXPECT_EQ(ss->Estimate(999), 10)
      << "unmonitored items get the min count as upper bound";
  EXPECT_EQ(ss->ErrorOf(999), 0);
}

TEST(SpaceSavingTest, ReplacementInheritsMinPlusWeight) {
  auto ss = SpaceSaving::Make(2);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 10);
  ss->Add(2, 20);
  ss->Add(3, 5);  // replaces item 1 (min=10): count 15, error 10
  EXPECT_EQ(ss->Estimate(3), 15);
  EXPECT_EQ(ss->ErrorOf(3), 10);
  EXPECT_FALSE(ss->GuaranteedAtLeast(6).size() == 2)
      << "item 3 only guarantees 15-10=5";
}

TEST(SpaceSavingTest, GuaranteedAtLeastFiltersByLowerBound) {
  auto ss = SpaceSaving::Make(2);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 100);
  ss->Add(2, 50);
  ss->Add(3, 1);  // replaces 2: count 51, error 50, lower bound 1
  const auto guaranteed = ss->GuaranteedAtLeast(40);
  ASSERT_EQ(guaranteed.size(), 1u);
  EXPECT_EQ(guaranteed[0].item, 1u);
}

TEST(SpaceSavingTest, SumOfCountsEqualsStreamLength) {
  // Invariant of Space-Saving with unit updates: monitored counts sum to n.
  auto gen = ZipfGenerator::Make(1000, 1.0, 13);
  ASSERT_TRUE(gen.ok());
  auto ss = SpaceSaving::Make(20);
  ASSERT_TRUE(ss.ok());
  constexpr Count kN = 30000;
  for (Count i = 0; i < kN; ++i) ss->Add(gen->Next());
  Count total = 0;
  for (const ItemCount& ic : ss->Candidates(20)) total += ic.count;
  EXPECT_EQ(total, kN);
}

TEST(SpaceSavingTest, CandidatesSortedDescending) {
  auto ss = SpaceSaving::Make(5);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 5);
  ss->Add(2, 50);
  ss->Add(3, 20);
  const auto c = ss->Candidates(5);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].item, 2u);
  EXPECT_EQ(c[1].item, 3u);
  EXPECT_EQ(c[2].item, 1u);
}

}  // namespace
}  // namespace streamfreq
