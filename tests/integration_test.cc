// Cross-module integration tests: generators -> trace I/O -> algorithms ->
// metrics, the full pipelines the benchmarks rely on.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/count_sketch.h"
#include "core/max_change.h"
#include "core/misra_gries.h"
#include "core/sketch_params.h"
#include "core/space_saving.h"
#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "stream/query_log.h"
#include "stream/trace.h"

namespace streamfreq {
namespace {

TEST(IntegrationTest, Lemma5SizedSketchSolvesApproxTop) {
  // End-to-end Theorem 1: size the sketch from the stream's own statistics
  // via Lemma 5, run the Section 3.2 algorithm, check the ApproxTop
  // contract with the paper's epsilon.
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 11);
  ASSERT_TRUE(workload.ok());
  constexpr size_t kK = 10;
  const double kEps = 0.2;

  ApproxTopSpec spec;
  spec.stream_length = workload->n();
  spec.k = kK;
  spec.epsilon = kEps;
  spec.delta = 0.05;
  spec.residual_f2 = workload->oracle.ResidualF2(kK);
  spec.nk = static_cast<double>(workload->oracle.NthCount(kK));
  auto sizing = SizeForApproxTop(spec);
  ASSERT_TRUE(sizing.ok());

  CountSketchParams params;
  params.depth = sizing->depth;
  params.width = sizing->width;
  params.seed = 2024;
  auto algo = CountSketchTopK::Make(params, kK);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(workload->stream);

  const auto verdict =
      CheckApproxTop(algo->Candidates(kK), workload->oracle, kK, kEps);
  EXPECT_TRUE(verdict.Pass())
      << "low=" << verdict.violations_low
      << " missing=" << verdict.violations_missing
      << " (b=" << sizing->width << ", t=" << sizing->depth << ")";
}

TEST(IntegrationTest, TraceRoundTripPreservesAlgorithmOutput) {
  auto workload = MakeZipfWorkload(5000, 1.1, 50000, 13);
  ASSERT_TRUE(workload.ok());
  const std::string path = ::testing::TempDir() + "/sfq_integration_trace.bin";
  ASSERT_TRUE(WriteTrace(path, workload->stream).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok());

  CountSketchParams p;
  p.depth = 5;
  p.width = 1024;
  p.seed = 5;
  auto direct = CountSketchTopK::Make(p, 20);
  auto replayed = CountSketchTopK::Make(p, 20);
  ASSERT_TRUE(direct.ok() && replayed.ok());
  direct->AddAll(workload->stream);
  replayed->AddAll(*loaded);

  const auto a = direct->Candidates(20);
  const auto b = replayed->Candidates(20);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].count, b[i].count);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, SketchAndCounterAlgorithmsAgreeOnHeavyHead) {
  auto workload = MakeZipfWorkload(30000, 1.2, 150000, 17);
  ASSERT_TRUE(workload.ok());
  constexpr size_t kK = 10;
  const auto truth = workload->oracle.TopK(kK);

  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 6;
  auto cs = CountSketchTopK::Make(p, 3 * kK);
  auto mg = MisraGries::Make(200);
  auto ss = SpaceSaving::Make(200);
  ASSERT_TRUE(cs.ok() && mg.ok() && ss.ok());
  cs->AddAll(workload->stream);
  mg->AddAll(workload->stream);
  ss->AddAll(workload->stream);

  for (StreamSummary* algo :
       std::initializer_list<StreamSummary*>{&*cs, &*mg, &*ss}) {
    const PrecisionRecall pr =
        ComputePrecisionRecall(algo->Candidates(kK), truth);
    EXPECT_GE(pr.recall, 0.9) << algo->Name();
  }
}

TEST(IntegrationTest, SerializedDifferenceSketchFindsChanges) {
  // Distributed-deployment scenario from the paper's additivity remark:
  // sketch S1 on one node, S2 on another, ship both, subtract centrally.
  QueryLogSpec spec;
  spec.universe = 5000;
  spec.period_length = 60000;
  spec.trending = 5;
  spec.fading = 5;
  spec.boost = 16.0;
  spec.fade = 0.0625;
  spec.seed = 19;
  auto log = MakeQueryLog(spec);
  ASSERT_TRUE(log.ok());

  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 7;
  auto node1 = CountSketch::Make(p);
  auto node2 = CountSketch::Make(p);
  ASSERT_TRUE(node1.ok() && node2.ok());
  for (ItemId q : log->period1) node1->Add(q);
  for (ItemId q : log->period2) node2->Add(q);

  std::string blob1, blob2;
  node1->SerializeTo(&blob1);
  node2->SerializeTo(&blob2);
  auto s1 = CountSketch::Deserialize(blob1);
  auto s2 = CountSketch::Deserialize(blob2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(s2->Subtract(*s1).ok());

  // The boosted items must show strongly positive deltas.
  ExactCounter c1, c2;
  c1.AddAll(log->period1);
  c2.AddAll(log->period2);
  for (ItemId id : log->trending_ids) {
    const Count true_delta = c2.CountOf(id) - c1.CountOf(id);
    const Count est = s2->Estimate(id);
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(true_delta),
                std::max(100.0, 0.3 * static_cast<double>(true_delta)));
  }
}

TEST(IntegrationTest, MaxChangeBeatsNaiveTopKDiffing) {
  // The paper's motivation for Section 4.2: items can change a lot without
  // ever being in either period's top-k. Build such an instance and verify
  // the max-change detector finds the changer that top-k diffing misses.
  Stream s1, s2;
  // 30 stable heavy hitters in both periods.
  for (ItemId q = 1; q <= 30; ++q) {
    for (int i = 0; i < 1000; ++i) {
      s1.push_back(q);
      s2.push_back(q);
    }
  }
  // The changer: rank ~31 in both periods, but swings 400 -> 900.
  for (int i = 0; i < 400; ++i) s1.push_back(777);
  for (int i = 0; i < 900; ++i) s2.push_back(777);

  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 23;
  auto changes = MaxChangeDetector::Run(p, 20, s1, s2, 1);
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].item, 777u);
  EXPECT_EQ((*changes)[0].Delta(), 500);

  // Naive approach: diff the per-period top-10 lists -> 777 never appears.
  ExactCounter c1, c2;
  c1.AddAll(s1);
  c2.AddAll(s2);
  for (const ItemCount& ic : c1.TopK(10)) EXPECT_NE(ic.item, 777u);
  for (const ItemCount& ic : c2.TopK(10)) EXPECT_NE(ic.item, 777u);
}

TEST(IntegrationTest, FlowWorkloadHeavyHittersDetected) {
  auto workload = MakeFlowWorkload(1.1, 200000, 29);
  ASSERT_TRUE(workload.ok());
  constexpr size_t kK = 10;
  const auto truth = workload->oracle.TopK(kK);

  CountSketchParams p;
  p.depth = 5;
  p.width = 8192;
  p.seed = 31;
  auto algo = CountSketchTopK::Make(p, 4 * kK);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(workload->stream);
  const PrecisionRecall pr = ComputePrecisionRecall(algo->Candidates(kK), truth);
  EXPECT_GE(pr.recall, 0.8) << "elephant flows must be identified";
}

}  // namespace
}  // namespace streamfreq
