#include "core/lossy_counting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(LossyCountingTest, RejectsBadEpsilon) {
  EXPECT_TRUE(LossyCounting::Make(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(LossyCounting::Make(1.0).status().IsInvalidArgument());
  EXPECT_TRUE(LossyCounting::Make(-0.1).status().IsInvalidArgument());
}

TEST(LossyCountingTest, NeverOverestimates) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(40000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto lc = LossyCounting::Make(0.001);
  ASSERT_TRUE(lc.ok());
  lc->AddAll(stream);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_LE(lc->Estimate(item), count);
  }
}

TEST(LossyCountingTest, UndercountBoundedByEpsN) {
  auto gen = ZipfGenerator::Make(2000, 1.1, 5);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(40000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  const double eps = 0.002;
  auto lc = LossyCounting::Make(eps);
  ASSERT_TRUE(lc.ok());
  lc->AddAll(stream);
  const double bound = eps * static_cast<double>(stream.size());
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_GE(static_cast<double>(lc->Estimate(item)),
              static_cast<double>(count) - bound - 1.0);
  }
}

TEST(LossyCountingTest, IcebergQueryHasNoFalseNegatives) {
  auto gen = ZipfGenerator::Make(2000, 1.1, 7);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(40000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  const double eps = 0.001;
  const double support = 0.005;
  auto lc = LossyCounting::Make(eps);
  ASSERT_TRUE(lc.ok());
  lc->AddAll(stream);

  std::unordered_set<ItemId> answer;
  for (const ItemCount& ic : lc->IcebergQuery(support)) answer.insert(ic.item);
  for (const auto& [item, count] : oracle.counts()) {
    if (static_cast<double>(count) >=
        support * static_cast<double>(stream.size())) {
      EXPECT_TRUE(answer.count(item)) << "missed iceberg item " << item;
    }
  }
}

TEST(LossyCountingTest, EntryCountStaysBounded) {
  // Theory: at most (1/eps) log(eps n) entries. Check with 2x headroom.
  auto gen = ZipfGenerator::Make(50000, 0.8, 9);
  ASSERT_TRUE(gen.ok());
  const double eps = 0.001;
  auto lc = LossyCounting::Make(eps);
  ASSERT_TRUE(lc.ok());
  constexpr size_t kN = 200000;
  for (size_t i = 0; i < kN; ++i) lc->Add(gen->Next());
  const double bound =
      (1.0 / eps) * std::log(eps * static_cast<double>(kN)) * 2.0;
  EXPECT_LT(static_cast<double>(lc->EntryCount()), bound);
}

TEST(LossyCountingTest, PrunesInfrequentItems) {
  auto lc = LossyCounting::Make(0.1);  // bucket width 10
  ASSERT_TRUE(lc.ok());
  lc->Add(42);  // appears once, in bucket 1
  for (ItemId q = 100; q < 130; ++q) lc->Add(q);  // push past boundaries
  EXPECT_EQ(lc->Estimate(42), 0) << "one-hit wonder must be pruned";
}

TEST(LossyCountingTest, FrequentItemSurvivesPruning) {
  auto lc = LossyCounting::Make(0.1);
  ASSERT_TRUE(lc.ok());
  for (int i = 0; i < 100; ++i) {
    lc->Add(7);
    lc->Add(static_cast<ItemId>(1000 + i));  // churn of singletons
  }
  EXPECT_GT(lc->Estimate(7), 80);
}

TEST(LossyCountingTest, WeightedUpdatesCountFully) {
  auto lc = LossyCounting::Make(0.01);
  ASSERT_TRUE(lc.ok());
  lc->Add(3, 500);
  EXPECT_EQ(lc->Estimate(3), 500);
  EXPECT_EQ(lc->stream_length(), 500);
}

TEST(LossyCountingTest, NameMentionsEpsilon) {
  auto lc = LossyCounting::Make(0.25);
  ASSERT_TRUE(lc.ok());
  EXPECT_NE(lc->Name().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace streamfreq
