// Broken on purpose: constructs a fresh SplitMix64 from the same seed for
// every row, so all depth_ rows draw identical (a, b) hash parameters --
// the rows are copies, not independent trials, and the Lemma 5 median
// argument collapses. The blessed idiom builds ONE seeder before the loop.
//
// sfq-lint-path: src/core/broken_sketch.cc
// sfq-lint-expect: row-seed

#include "core/count_sketch.h"
#include "hash/random.h"

namespace streamfreq {

void BrokenSketch::InitRows(uint64_t seed) {
  hashes_.reserve(depth_);
  for (size_t i = 0; i < depth_; ++i) {
    SplitMix64 seeder(seed);  // same seed every iteration!
    hashes_.emplace_back(seeder);
  }
}

}  // namespace streamfreq
