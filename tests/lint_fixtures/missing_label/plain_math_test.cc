// Control case: no concurrent/ usage, so no label requirement.
#include <gtest/gtest.h>

TEST(PlainMath, Placeholder) { EXPECT_EQ(2 + 2, 4); }
