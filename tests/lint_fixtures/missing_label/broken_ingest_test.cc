// Uses the concurrent subsystem but (per the CMakeLists next door) is not
// labelled `concurrent` -- the bug this fixture exists to demonstrate.
#include "concurrent/parallel_ingestor.h"

#include <gtest/gtest.h>

TEST(BrokenIngest, Placeholder) { SUCCEED(); }
