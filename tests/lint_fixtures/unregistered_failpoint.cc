// sfq-lint-path: src/core/broken_failpoint.cc
// sfq-lint-expect: failpoint-site
//
// Two ways to plant a fault the robustness tooling cannot see:
//   1. an SFQ_FAILPOINT site that KnownSites() never registered -- every
//      --failpoints spec naming it is rejected as a typo, and the chaos
//      scheduler can never exercise the path it guards;
//   2. a direct FailpointRegistry::Global().Evaluate() call, which stays
//      compiled in (and stays a lock + map lookup) even when the build
//      sets STREAMFREQ_FAILPOINTS=OFF.
#include "util/failpoint.h"

namespace streamfreq {

bool MaybeInjectedFailure() {
  if (SFQ_FAILPOINT("core.unregistered_site")) return true;
  return false;
}

bool DirectRegistryPoll() {
  const FailDecision decision =
      FailpointRegistry::Global().Evaluate("batch_queue.push");
  return static_cast<bool>(decision);
}

}  // namespace streamfreq
