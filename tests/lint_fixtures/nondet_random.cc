// Broken on purpose: seeds a generator from std::random_device inside a
// deterministic-replay path. A fuzz failure found with this code would
// print a reproducer that never reproduces.
//
// sfq-lint-path: src/verify/broken_workload.cc
// sfq-lint-expect: nondet-random

#include <random>

#include "stream/types.h"

namespace streamfreq {

ItemId BrokenPick() {
  std::random_device rd;
  std::mt19937_64 gen(rd());
  return static_cast<ItemId>(gen());
}

}  // namespace streamfreq
