// Broken on purpose: discards the Status from Merge, so an incompatible-
// sketch error (different seed or geometry) vanishes and the caller keeps
// querying a half-merged sketch. In compiled code the class-level
// [[nodiscard]] on Status makes this a build error; the lint rule covers
// snippets the compiler never sees.
//
// sfq-lint-path: src/eval/broken_merge.cc
// sfq-lint-expect: dropped-status

#include "core/count_sketch.h"

namespace streamfreq {

void BrokenMerge(CountSketch& into, const CountSketch& from) {
  into.Merge(from);
}

}  // namespace streamfreq
