// sfq-lint-path: src/server/bad_dispatch.cc
// sfq-lint-expect: server-opcode
//
// An Opcode minted from a raw numeric literal bypasses LookupOpcode()'s
// range check: the value 13 names no kOpcodeTable row, so a Request
// carrying it would frame, checksum, and decode cleanly and then dispatch
// nowhere. Only the registry (src/server/protocol.cc) may convert numbers
// to opcodes.
#include "server/protocol.h"

namespace streamfreq {

Opcode GuessOpcode(uint64_t raw) {
  if (raw < kOpcodeCount) {
    return static_cast<Opcode>(13);
  }
  return Opcode::kPing;
}

}  // namespace streamfreq
