// sfq-lint-path: src/core/backedge_probe.cc
// sfq-lint-expect: layer-dag
//
// A core-layer file reaching *up* into the server layer: the declared
// order in tools/layers.toml puts server above core, so this include is a
// back-edge and must fail the layer-DAG pass.

#include "server/protocol.h"

namespace streamfreq {

int UsesServerFromCore() { return kOpcodeCount; }

}  // namespace streamfreq
