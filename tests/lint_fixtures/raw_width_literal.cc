// Broken on purpose: hard-codes the sketch width instead of deriving it
// from the Lemma 5 sizing rules in sketch_params.h, so nothing ties the
// geometry to the stream statistics it is supposed to bound.
//
// sfq-lint-path: src/eval/broken_setup.cc
// sfq-lint-expect: raw-geometry

#include "core/count_sketch.h"

namespace streamfreq {

CountSketchParams BrokenSetup() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 16384;
  return p;
}

}  // namespace streamfreq
