// sfq-lint-path: src/server/lock_cycle_probe.cc
// sfq-lint-expect: lock-order
//
// Two paths acquire the same two mutexes in opposite orders: thread A in
// RegistryThenTenant holds g_registry_mu and waits for g_tenant_mu while
// thread B in TenantThenRegistry holds g_tenant_mu and waits for
// g_registry_mu -- a textbook deadlock. The lock-order pass must report
// the cycle g_registry_mu -> g_tenant_mu -> g_registry_mu.

#include "util/mutex.h"

namespace streamfreq {

Mutex g_registry_mu;
Mutex g_tenant_mu;

void RegistryThenTenant() {
  MutexLock outer(g_registry_mu);
  MutexLock inner(g_tenant_mu);
}

void TenantThenRegistry() {
  MutexLock outer(g_tenant_mu);
  MutexLock inner(g_registry_mu);
}

}  // namespace streamfreq
