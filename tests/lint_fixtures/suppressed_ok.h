// NOT broken: shows the sanctioned suppression form. The member below is
// thread-confined (written by one owner thread, read only after join), and
// the NOLINTNEXTLINE carries the mandatory justification -- so sfq-lint
// must stay silent on this file. A reason-less suppression would itself be
// a finding.
//
// sfq-lint-path: src/concurrent/suppressed_counter.h
#pragma once

#include "util/macros.h"
#include "util/mutex.h"

namespace streamfreq {

class SuppressedCounter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++guarded_count_;
  }

 private:
  Mutex mu_;
  long guarded_count_ SFQ_GUARDED_BY(mu_) = 0;
  // NOLINTNEXTLINE(sfq-unguarded-member): owner-thread only, read after join
  long scratch_count_ = 0;
};

}  // namespace streamfreq
