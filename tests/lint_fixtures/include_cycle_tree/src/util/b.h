// The other half of the deliberate include cycle: b.h -> a.h.
#ifndef FIXTURE_UTIL_B_H_
#define FIXTURE_UTIL_B_H_

#include "util/a.h"

inline int BValue() { return 2; }

#endif  // FIXTURE_UTIL_B_H_
