// Half of the deliberate include cycle: a.h -> b.h -> a.h.
#ifndef FIXTURE_UTIL_A_H_
#define FIXTURE_UTIL_A_H_

#include "util/b.h"

inline int AValue() { return 1; }

#endif  // FIXTURE_UTIL_A_H_
