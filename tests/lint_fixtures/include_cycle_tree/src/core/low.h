// The deliberate back-edge: core (layer 2) including server (layer 3).
#ifndef FIXTURE_CORE_LOW_H_
#define FIXTURE_CORE_LOW_H_

#include "server/high.h"

inline int LowValue() { return HighValue(); }

#endif  // FIXTURE_CORE_LOW_H_
