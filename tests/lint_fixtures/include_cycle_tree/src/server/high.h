// Top-layer header; nothing wrong with this file itself.
#ifndef FIXTURE_SERVER_HIGH_H_
#define FIXTURE_SERVER_HIGH_H_

inline int HighValue() { return 3; }

#endif  // FIXTURE_SERVER_HIGH_H_
