// sfq-lint-path: src/hash/hot_alloc_probe.cc
// sfq-lint-expect: hot-path
//
// An allocation inside a function declared // sfq-hot-path: the
// per-batch scratch vector reallocates in the ingest inner loop, exactly
// the regression class the purity rule exists to reject (use a fixed
// stack buffer like the real kernels' uint64_t bkt[kChunk]).

#include <cstdint>
#include <vector>

namespace streamfreq {

// sfq-hot-path
void BucketsWithScratch(const uint64_t* keys, unsigned long n,
                        uint64_t* out) {
  std::vector<uint64_t> scratch;
  for (unsigned long i = 0; i < n; ++i) {
    scratch.push_back(keys[i] >> 1);
    out[i] = scratch[i];
  }
}

}  // namespace streamfreq
