// sfq-lint-path: src/server/blocking_probe.cc
// sfq-lint-expect: blocking-under-lock
//
// A socket write while the connection mutex is held: every other thread
// that needs g_conn_mu now waits on a peer's TCP receive window. The
// blocking-call-under-lock pass must flag the write(); the fix is to copy
// the response out under the lock and block outside it.

#include <unistd.h>

#include "util/mutex.h"

namespace streamfreq {

Mutex g_conn_mu;

void RespondLocked(int fd, const char* buf, unsigned long n) {
  MutexLock lock(g_conn_mu);
  (void)write(fd, buf, n);
}

}  // namespace streamfreq
