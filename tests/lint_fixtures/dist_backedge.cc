// sfq-lint-path: src/dist/cli_probe.cc
// sfq-lint-expect: layer-dag
//
// The dist layer reaching *up* into the CLI layer: tools/ sits at the top
// of the declared order in tools/layers.toml, so a dist file pulling a
// CLI helper is a back-edge — the aggregation engine must stay drivable
// without the `sfq` front end (the chaos harness and tests link it
// directly). The layer-DAG pass must flag the include.

#include "tools/usage_probe.h"

namespace streamfreq {

int UsesCliFromDist() { return 1; }

}  // namespace streamfreq
