// Broken on purpose: locks with std::mutex / std::lock_guard directly.
// These carry no capability annotations, so clang's -Werror=thread-safety
// proves nothing about any member this lock protects. util/mutex.h has the
// annotated equivalents.
//
// sfq-lint-path: src/concurrent/broken_cell.cc
// sfq-lint-expect: raw-mutex

#include <mutex>

namespace streamfreq {

class BrokenCell {
 public:
  void Set(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace streamfreq
