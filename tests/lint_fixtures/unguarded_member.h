// Broken on purpose: a class that owns a Mutex but leaves a mutable member
// without SFQ_GUARDED_BY, so the thread-safety analysis has no idea the
// two are related and unlocked access compiles clean.
//
// sfq-lint-path: src/concurrent/broken_counter.h
// sfq-lint-expect: unguarded-member
#pragma once

#include "util/macros.h"
#include "util/mutex.h"

namespace streamfreq {

class BrokenCounter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  long count_ = 0;
};

}  // namespace streamfreq
