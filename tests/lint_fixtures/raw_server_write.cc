// sfq-lint-path: src/server/bad_persist.cc
// sfq-lint-expect: durable-write
//
// A server-side persist that hand-rolls its own file I/O: the ofstream
// write can be torn by a crash mid-buffer, and the rename publishes
// whatever bytes made it. Recovery has no framing to reject the result —
// unlike the WAL (CRC-framed records, src/server/wal.cc) or a sketch_io
// snapshot (write-temp-then-rename, fsync before the commit rename).
#include <cstdio>
#include <fstream>
#include <string>

namespace streamfreq {

void PersistLedger(const std::string& path, const std::string& bytes) {
  std::ofstream out(path + ".tmp", std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::rename((path + ".tmp").c_str(), path.c_str());
}

}  // namespace streamfreq
