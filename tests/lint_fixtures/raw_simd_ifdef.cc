// Broken on purpose: hand-rolls an AVX2 path behind a raw instruction-set
// ifdef instead of programming against simd::U64x8. This reintroduces
// per-translation-unit ISA divergence — the sketch library would execute
// different arithmetic depending on which TU's flags won — and breaks the
// single-file auditability of the scalar/vector bit-identity argument
// (docs/PERFORMANCE.md). SIMD conditionals and intrinsics belong in
// src/util/simd.h and nowhere else.
//
// sfq-lint-path: src/core/hand_rolled_simd.cc
// sfq-lint-expect: simd-ifdef

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace streamfreq {

uint64_t SumKeys(const uint64_t* keys, size_t n) {
  uint64_t total = 0;
#if defined(__AVX2__)
  __m256i acc = _mm256_setzero_si256();
  for (size_t i = 0; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)));
  }
#endif
  for (size_t i = 0; i < n; ++i) total += keys[i];
  return total;
}

}  // namespace streamfreq
