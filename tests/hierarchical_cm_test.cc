#include "core/hierarchical_cm.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <unordered_set>

#include "hash/random.h"

namespace streamfreq {
namespace {

HierarchicalParams SmallParams() {
  HierarchicalParams p;
  p.bits = 16;
  p.depth = 4;
  p.width = 512;
  p.seed = 9;
  return p;
}

TEST(HierarchicalCmTest, RejectsBadParams) {
  HierarchicalParams p = SmallParams();
  p.bits = 0;
  EXPECT_TRUE(HierarchicalCountMin::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.width = 0;
  EXPECT_TRUE(HierarchicalCountMin::Make(p).status().IsInvalidArgument());
}

TEST(HierarchicalCmTest, PointAndRangeAreUpperBounds) {
  auto h = HierarchicalCountMin::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(3);
  std::map<uint64_t, Count> truth;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t k = rng.UniformBelow(1 << 16);
    h->Add(k);
    ++truth[k];
  }
  // Points.
  int checked = 0;
  for (const auto& [k, c] : truth) {
    ASSERT_GE(h->EstimatePoint(k), c);
    if (++checked == 1000) break;
  }
  // Ranges.
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t lo = rng.UniformBelow(1 << 16);
    uint64_t hi = lo + rng.UniformBelow((1 << 16) - lo);
    Count exact = 0;
    for (auto it = truth.lower_bound(lo);
         it != truth.end() && it->first <= hi; ++it) {
      exact += it->second;
    }
    auto est = h->EstimateRange(lo, hi);
    ASSERT_TRUE(est.ok());
    ASSERT_GE(*est, exact) << "[" << lo << "," << hi << "]";
  }
  // Whole domain is exact.
  auto whole = h->EstimateRange(0, (1 << 16) - 1);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, 30000);
}

TEST(HierarchicalCmTest, HeavyHittersHaveNoFalseNegatives) {
  auto h = HierarchicalCountMin::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(5);
  for (int i = 0; i < 30000; ++i) h->Add(rng.UniformBelow(1 << 16));
  const uint64_t heavy[] = {3, 999, 32767, 65535};
  for (uint64_t k : heavy) h->Add(k, 1000);

  const auto hits = h->HeavyHitters(1000);
  std::unordered_set<uint64_t> found;
  for (const HeavyHitter& hh : hits) found.insert(hh.key);
  for (uint64_t k : heavy) {
    ASSERT_TRUE(found.count(k))
        << "structural no-false-negative property violated for " << k;
  }
}

TEST(HierarchicalCmTest, RanksAndQuantilesBracketTruth) {
  auto h = HierarchicalCountMin::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(7);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) h->Add(rng.UniformBelow(1 << 16));

  // RankOfKey is an overestimating prefix sum; it must be monotone and
  // within ~10% of the uniform expectation.
  Count prev = -1;
  for (uint64_t key : {1000u, 20000u, 40000u, 60000u}) {
    const Count rank = h->RankOfKey(key);
    ASSERT_GE(rank, prev) << "ranks must be monotone";
    prev = rank;
    const double expect =
        static_cast<double>(kN) * static_cast<double>(key) / 65536.0;
    EXPECT_NEAR(static_cast<double>(rank), expect, expect * 0.15 + 200.0);
  }
  const uint64_t median = h->KeyAtRank(kN / 2);
  EXPECT_NEAR(static_cast<double>(median), 32768.0, 5000.0);
}

TEST(HierarchicalCmTest, MergeMatchesUnion) {
  auto a = HierarchicalCountMin::Make(SmallParams());
  auto b = HierarchicalCountMin::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  a->Add(100, 5);
  b->Add(100, 7);
  b->Add(200, 3);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->TotalWeight(), 15);
  EXPECT_GE(a->EstimatePoint(100), 12);
  EXPECT_GE(a->EstimatePoint(200), 3);
}

TEST(HierarchicalCmTest, IncompatibleMergeRejected) {
  auto a = HierarchicalCountMin::Make(SmallParams());
  HierarchicalParams p = SmallParams();
  p.seed = 10;
  auto b = HierarchicalCountMin::Make(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
}

TEST(HierarchicalCmTest, RangeErrors) {
  auto h = HierarchicalCountMin::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->EstimateRange(5, 4).status().IsInvalidArgument());
  EXPECT_TRUE(h->EstimateRange(0, 1 << 16).status().IsOutOfRange());
}

}  // namespace
}  // namespace streamfreq
