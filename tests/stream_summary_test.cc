#include "core/stream_summary.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/space_saving.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(StreamSummarySsTest, RejectsZeroCapacity) {
  EXPECT_TRUE(StreamSummarySpaceSaving::Make(0).status().IsInvalidArgument());
}

TEST(StreamSummarySsTest, ExactWhenDistinctFits) {
  auto ss = StreamSummarySpaceSaving::Make(10);
  ASSERT_TRUE(ss.ok());
  for (ItemId q = 1; q <= 10; ++q) ss->Add(q, static_cast<Count>(2 * q));
  for (ItemId q = 1; q <= 10; ++q) {
    EXPECT_EQ(ss->Estimate(q), 2 * static_cast<Count>(q));
    EXPECT_EQ(ss->ErrorOf(q), 0);
  }
  EXPECT_TRUE(ss->CheckInvariants());
}

TEST(StreamSummarySsTest, MatchesHeapVariantExactly) {
  // Both variants implement the same deterministic algorithm (given the
  // same victim selection at ties). Compare full candidate multisets of
  // (count) and the monitored invariants on a churny stream.
  auto gen = ZipfGenerator::Make(5000, 0.9, 13);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(60000);

  constexpr size_t kCap = 128;
  auto ssl = StreamSummarySpaceSaving::Make(kCap);
  auto ssh = SpaceSaving::Make(kCap);
  ASSERT_TRUE(ssl.ok() && ssh.ok());
  ssl->AddAll(stream);
  ssh->AddAll(stream);

  // Victim choice at count ties differs, so monitored sets may differ on
  // tail entries; but the algorithm's invariants must agree:
  EXPECT_EQ(ssl->MonitoredCount(), ssh->MonitoredCount());
  EXPECT_EQ(ssl->MinCount(), ssh->MinCount());
  // Total counts are stream length for both.
  Count total_ssl = 0, total_ssh = 0;
  for (const ItemCount& ic : ssl->Candidates(kCap)) total_ssl += ic.count;
  for (const ItemCount& ic : ssh->Candidates(kCap)) total_ssh += ic.count;
  EXPECT_EQ(total_ssl, static_cast<Count>(stream.size()));
  EXPECT_EQ(total_ssh, static_cast<Count>(stream.size()));
  // Head agreement: top-10 items identical.
  const auto top_ssl = ssl->Candidates(10);
  const auto top_ssh = ssh->Candidates(10);
  ASSERT_EQ(top_ssl.size(), top_ssh.size());
  for (size_t i = 0; i < top_ssl.size(); ++i) {
    EXPECT_EQ(top_ssl[i].count, top_ssh[i].count) << "rank " << i;
  }
}

TEST(StreamSummarySsTest, GuaranteesMatchSpaceSavingTheory) {
  auto gen = ZipfGenerator::Make(2000, 1.1, 17);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  constexpr size_t kCap = 100;
  auto ss = StreamSummarySpaceSaving::Make(kCap);
  ASSERT_TRUE(ss.ok());
  ss->AddAll(stream);

  EXPECT_LE(ss->MinCount(),
            static_cast<Count>(stream.size() / kCap));
  for (const ItemCount& ic : ss->Candidates(kCap)) {
    ASSERT_GE(ic.count, oracle.CountOf(ic.item)) << "upper bound";
    ASSERT_LE(ic.count - ss->ErrorOf(ic.item), oracle.CountOf(ic.item))
        << "count - error lower bound";
  }
  EXPECT_TRUE(ss->CheckInvariants());
}

TEST(StreamSummarySsTest, InvariantsHoldUnderChurn) {
  auto gen = ZipfGenerator::Make(10000, 0.4, 19);
  ASSERT_TRUE(gen.ok());
  auto ss = StreamSummarySpaceSaving::Make(32);
  ASSERT_TRUE(ss.ok());
  for (int i = 0; i < 5000; ++i) {
    ss->Add(gen->Next());
    if (i % 257 == 0) {
      ASSERT_TRUE(ss->CheckInvariants()) << "at step " << i;
    }
  }
  EXPECT_TRUE(ss->CheckInvariants());
}

TEST(StreamSummarySsTest, WeightedUpdatesCrossBuckets) {
  auto ss = StreamSummarySpaceSaving::Make(4);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 5);
  ss->Add(2, 10);
  ss->Add(3, 10);
  ss->Add(1, 100);  // jumps over the 10-bucket
  EXPECT_EQ(ss->Estimate(1), 105);
  EXPECT_TRUE(ss->CheckInvariants());
}

TEST(StreamSummarySsTest, ReplacementInheritsMinPlusWeight) {
  auto ss = StreamSummarySpaceSaving::Make(2);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 10);
  ss->Add(2, 20);
  ss->Add(3, 7);
  EXPECT_EQ(ss->Estimate(3), 17);
  EXPECT_EQ(ss->ErrorOf(3), 10);
  EXPECT_FALSE(ss->Estimate(1) == 10 && ss->ErrorOf(1) == 0)
      << "item 1 must have been evicted";
  EXPECT_TRUE(ss->CheckInvariants());
}

TEST(StreamSummarySsTest, CandidatesDescendingFromBucketList) {
  auto ss = StreamSummarySpaceSaving::Make(8);
  ASSERT_TRUE(ss.ok());
  ss->Add(1, 3);
  ss->Add(2, 9);
  ss->Add(3, 6);
  ss->Add(4, 9);
  const auto c = ss->Candidates(8);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].count, 9);
  EXPECT_EQ(c[1].count, 9);
  EXPECT_EQ(c[2].count, 6);
  EXPECT_EQ(c[3].count, 3);
  EXPECT_EQ(ss->Candidates(2).size(), 2u);
}

TEST(StreamSummarySsTest, UnmonitoredEstimateIsMinCount) {
  auto ss = StreamSummarySpaceSaving::Make(2);
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(ss->Estimate(999), 0) << "empty summary";
  ss->Add(1, 4);
  EXPECT_EQ(ss->Estimate(999), 0) << "slots still free";
  ss->Add(2, 6);
  EXPECT_EQ(ss->Estimate(999), 4) << "full: min count is the bound";
}

}  // namespace
}  // namespace streamfreq
