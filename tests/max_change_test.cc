#include "core/max_change.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/exact_counter.h"
#include "stream/query_log.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

CountSketchParams DefaultSketch() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 77;
  return p;
}

TEST(MaxChangeTest, RejectsZeroTracked) {
  EXPECT_TRUE(
      MaxChangeDetector::Make(DefaultSketch(), 0).status().IsInvalidArgument());
}

TEST(MaxChangeTest, SimplePlantedChange) {
  // S1: item 1 x100, item 2 x100. S2: item 1 x100, item 2 x10, item 3 x200.
  Stream s1, s2;
  for (int i = 0; i < 100; ++i) s1.push_back(1);
  for (int i = 0; i < 100; ++i) s1.push_back(2);
  for (int i = 0; i < 100; ++i) s2.push_back(1);
  for (int i = 0; i < 10; ++i) s2.push_back(2);
  for (int i = 0; i < 200; ++i) s2.push_back(3);

  auto changes = MaxChangeDetector::Run(DefaultSketch(), 10, s1, s2, 3);
  ASSERT_TRUE(changes.ok());
  ASSERT_GE(changes->size(), 2u);
  EXPECT_EQ((*changes)[0].item, 3u);
  EXPECT_EQ((*changes)[0].Delta(), 200);
  EXPECT_EQ((*changes)[1].item, 2u);
  EXPECT_EQ((*changes)[1].Delta(), -90);
}

TEST(MaxChangeTest, ExactCountsForReportedItems) {
  Stream s1 = {5, 5, 5, 6, 6};
  Stream s2 = {5, 6, 6, 6, 6, 7};
  auto changes = MaxChangeDetector::Run(DefaultSketch(), 10, s1, s2, 10);
  ASSERT_TRUE(changes.ok());
  for (const ChangeResult& c : *changes) {
    if (c.item == 5) {
      EXPECT_EQ(c.count_s1, 3);
      EXPECT_EQ(c.count_s2, 1);
    }
    if (c.item == 6) {
      EXPECT_EQ(c.count_s1, 2);
      EXPECT_EQ(c.count_s2, 4);
    }
    if (c.item == 7) {
      EXPECT_EQ(c.count_s1, 0);
      EXPECT_EQ(c.count_s2, 1);
    }
  }
}

TEST(MaxChangeTest, IdenticalStreamsReportZeroDeltas) {
  auto gen = ZipfGenerator::Make(100, 1.0, 5);
  ASSERT_TRUE(gen.ok());
  const Stream s = gen->Take(5000);
  auto changes = MaxChangeDetector::Run(DefaultSketch(), 20, s, s, 5);
  ASSERT_TRUE(changes.ok());
  for (const ChangeResult& c : *changes) {
    EXPECT_EQ(c.Delta(), 0);
  }
}

TEST(MaxChangeTest, DetectsTrendingQueriesInSyntheticLog) {
  QueryLogSpec spec;
  spec.universe = 20000;
  spec.z = 1.0;
  spec.period_length = 150000;
  spec.trending = 10;
  spec.fading = 10;
  spec.boost = 16.0;
  spec.fade = 0.0625;
  spec.seed = 99;
  auto log = MakeQueryLog(spec);
  ASSERT_TRUE(log.ok());

  // Ground truth: top-20 exact |delta| items.
  ExactCounter c1, c2;
  c1.AddAll(log->period1);
  c2.AddAll(log->period2);
  ExactCounter delta;
  for (const auto& [item, cnt] : c1.counts()) delta.Add(item, -cnt);
  for (const auto& [item, cnt] : c2.counts()) delta.Add(item, cnt);
  std::vector<std::pair<Count, ItemId>> truth;
  for (const auto& [item, d] : delta.counts()) {
    truth.push_back({d < 0 ? -d : d, item});
  }
  std::sort(truth.rbegin(), truth.rend());
  truth.resize(20);

  auto changes = MaxChangeDetector::Run(DefaultSketch(), 100, log->period1,
                                        log->period2, 20);
  ASSERT_TRUE(changes.ok());
  std::unordered_set<ItemId> reported;
  for (const ChangeResult& c : *changes) reported.insert(c.item);

  size_t hits = 0;
  for (const auto& [mag, item] : truth) hits += reported.count(item);
  EXPECT_GE(hits, 16u) << "at least 80% of true top changers found";
}

TEST(MaxChangeTest, ReportsBothRisersAndFallers) {
  Stream s1, s2;
  for (int i = 0; i < 500; ++i) s1.push_back(1);  // disappears
  for (int i = 0; i < 500; ++i) s2.push_back(2);  // appears
  auto changes = MaxChangeDetector::Run(DefaultSketch(), 10, s1, s2, 2);
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 2u);
  std::unordered_set<ItemId> reported;
  for (const ChangeResult& c : *changes) reported.insert(c.item);
  EXPECT_TRUE(reported.count(1));
  EXPECT_TRUE(reported.count(2));
}

TEST(MaxChangeTest, IncrementalApiMatchesRun) {
  Stream s1 = {1, 1, 2};
  Stream s2 = {2, 2, 2, 3};
  auto det = MaxChangeDetector::Make(DefaultSketch(), 10);
  ASSERT_TRUE(det.ok());
  for (ItemId q : s1) det->ObserveS1(q);
  for (ItemId q : s2) det->ObserveS2(q);
  det->FinishFirstPass();
  for (ItemId q : s1) det->SecondPass(1, q);
  for (ItemId q : s2) det->SecondPass(2, q);
  const auto a = det->TopChanges(10);
  auto b = MaxChangeDetector::Run(DefaultSketch(), 10, s1, s2, 10);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.size(), b->size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, (*b)[i].item);
    EXPECT_EQ(a[i].Delta(), (*b)[i].Delta());
  }
}

TEST(MaxChangeTest, DifferenceSketchEstimatesDeltas) {
  Stream s1, s2;
  for (int i = 0; i < 300; ++i) s1.push_back(10);
  for (int i = 0; i < 120; ++i) s2.push_back(10);
  auto det = MaxChangeDetector::Make(DefaultSketch(), 5);
  ASSERT_TRUE(det.ok());
  for (ItemId q : s1) det->ObserveS1(q);
  for (ItemId q : s2) det->ObserveS2(q);
  det->FinishFirstPass();
  EXPECT_EQ(det->difference_sketch().Estimate(10), -180);
}

TEST(MaxChangeTest, AbsDeltaHelper) {
  ChangeResult r{1, 10, 3};
  EXPECT_EQ(r.Delta(), -7);
  EXPECT_EQ(r.AbsDelta(), 7);
}

}  // namespace
}  // namespace streamfreq
