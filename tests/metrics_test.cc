#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace streamfreq {
namespace {

TEST(PrecisionRecallTest, EmptyInputsGiveZero) {
  const PrecisionRecall pr = ComputePrecisionRecall({}, {{1, 10}});
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.0);
  const PrecisionRecall pr2 = ComputePrecisionRecall({{1, 10}}, {});
  EXPECT_DOUBLE_EQ(pr2.precision, 0.0);
}

TEST(PrecisionRecallTest, PerfectMatch) {
  const std::vector<ItemCount> both = {{1, 10}, {2, 5}};
  const PrecisionRecall pr = ComputePrecisionRecall(both, both);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(PrecisionRecallTest, PartialOverlap) {
  const std::vector<ItemCount> candidates = {{1, 10}, {2, 5}, {3, 4}, {4, 3}};
  const std::vector<ItemCount> truth = {{1, 10}, {2, 5}};
  const PrecisionRecall pr = ComputePrecisionRecall(candidates, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_NEAR(pr.F1(), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionRecallTest, CandidateCountsIrrelevant) {
  // Only membership matters for P/R; the reported counts may be estimates.
  const PrecisionRecall pr =
      ComputePrecisionRecall({{1, 99999}}, {{1, 10}, {2, 10}});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(AverageRelativeErrorTest, ZeroWhenExact) {
  const std::vector<ItemCount> truth = {{1, 10}, {2, 20}};
  EXPECT_DOUBLE_EQ(
      AverageRelativeError(truth, [](ItemId q) { return 10 * static_cast<Count>(q); }),
      0.0);
}

TEST(AverageRelativeErrorTest, AveragesSymmetrically) {
  const std::vector<ItemCount> truth = {{1, 100}, {2, 100}};
  // Estimates 110 and 90: both 10% off.
  const double are = AverageRelativeError(
      truth, [](ItemId q) { return q == 1 ? 110 : 90; });
  EXPECT_DOUBLE_EQ(are, 0.1);
}

TEST(AverageRelativeErrorTest, EmptyTruthIsZero) {
  EXPECT_DOUBLE_EQ(AverageRelativeError({}, [](ItemId) { return 0; }), 0.0);
}

TEST(MaxAbsoluteErrorTest, PicksWorst) {
  const std::vector<ItemCount> truth = {{1, 100}, {2, 100}};
  EXPECT_DOUBLE_EQ(
      MaxAbsoluteError(truth, [](ItemId q) { return q == 1 ? 95 : 120; }),
      20.0);
}

TEST(CheckApproxTopTest, PassesOnExactTopK) {
  ExactCounter oracle;
  oracle.Add(1, 100);
  oracle.Add(2, 90);
  oracle.Add(3, 10);
  const auto v = CheckApproxTop({{1, 100}, {2, 90}}, oracle, 2, 0.1);
  EXPECT_TRUE(v.Pass());
  EXPECT_EQ(v.violations_low, 0u);
  EXPECT_EQ(v.violations_missing, 0u);
}

TEST(CheckApproxTopTest, FlagsLightCandidate) {
  ExactCounter oracle;
  oracle.Add(1, 100);
  oracle.Add(2, 90);
  oracle.Add(3, 10);
  // Item 3 (count 10) is far below (1-eps)*n_2 = 81.
  const auto v = CheckApproxTop({{1, 100}, {3, 95}}, oracle, 2, 0.1);
  EXPECT_FALSE(v.all_candidates_heavy);
  EXPECT_EQ(v.violations_low, 1u);
}

TEST(CheckApproxTopTest, FlagsMissingMandatoryItem) {
  ExactCounter oracle;
  oracle.Add(1, 200);  // 200 >= (1+0.1)*90 = 99: mandatory
  oracle.Add(2, 90);
  oracle.Add(3, 85);
  const auto v = CheckApproxTop({{2, 90}, {3, 85}}, oracle, 2, 0.1);
  EXPECT_FALSE(v.all_heavy_found);
  EXPECT_GE(v.violations_missing, 1u);
}

TEST(CheckApproxTopTest, BoundaryItemsAreAllowedEitherWay) {
  ExactCounter oracle;
  oracle.Add(1, 100);
  oracle.Add(2, 100);
  oracle.Add(3, 95);  // within (1 +/- eps) n_k: neither mandatory nor banned
  const auto with3 = CheckApproxTop({{1, 100}, {3, 95}}, oracle, 2, 0.1);
  EXPECT_TRUE(with3.all_candidates_heavy);
  const auto without3 = CheckApproxTop({{1, 100}, {2, 100}}, oracle, 2, 0.1);
  EXPECT_TRUE(without3.Pass());
}

}  // namespace
}  // namespace streamfreq
