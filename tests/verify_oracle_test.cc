// Tests for the verification oracle and the guarantee-checker registry.
//
// The central property: every checker FIRES on a summary that breaks its
// contract. A checker that stays silent on garbage verifies nothing, so
// each guarantee gets a deliberately broken fake StreamSummary driven
// through the same Check path the fuzz driver uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "verify/checkers.h"
#include "verify/fuzz.h"
#include "verify/oracle.h"
#include "verify/program.h"
#include "verify/violation.h"

namespace streamfreq {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

FuzzProgram BaseProgram() {
  FuzzProgram p;
  p.kind = WorkloadKind::kZipf;
  p.n = 20000;
  p.universe = 4096;
  p.z = 1.1;
  p.k = 10;
  p.epsilon = 0.2;
  p.seed = 99;
  return p;
}

const GuaranteeChecker* FindChecker(const std::string& name) {
  for (const auto& checker : DefaultCheckers()) {
    if (checker->Name() == name) return checker.get();
  }
  return nullptr;
}

/// A StreamSummary whose estimates and candidates are whatever the test
/// says — the "broken implementation" every checker must catch.
class FakeSummary final : public StreamSummary {
 public:
  FakeSummary(std::function<Count(ItemId)> estimate,
              std::vector<ItemCount> candidates)
      : estimate_(std::move(estimate)), candidates_(std::move(candidates)) {}

  std::string Name() const override { return "FakeSummary"; }
  void Add(ItemId, Count) override {}
  using StreamSummary::Add;
  Count Estimate(ItemId item) const override { return estimate_(item); }
  std::vector<ItemCount> Candidates(size_t k) const override {
    std::vector<ItemCount> out = candidates_;
    if (out.size() > k) out.resize(k);
    return out;
  }
  size_t SpaceBytes() const override { return 0; }

 private:
  std::function<Count(ItemId)> estimate_;
  std::vector<ItemCount> candidates_;
};

struct FiringHarness {
  FiringHarness() : stream(*MaterializeStream(BaseProgram())), oracle(stream) {
    setup = MakeVerifySetup(10, 0.2, 1.0, 99, oracle);
    context.sketch_depth = 5;
    context.sketch_width = 256;
    context.lemma_width = 1;  // premise met: width >= lemma bound
    context.counter_capacity = 20;
    context.lossy_epsilon = 0.001;
  }

  std::vector<Violation> Run(const std::string& checker_name,
                             const FakeSummary& fake) const {
    const GuaranteeChecker* checker = FindChecker(checker_name);
    EXPECT_NE(checker, nullptr) << checker_name;
    return checker->Check(fake, oracle, setup, context);
  }

  Stream stream;
  Oracle oracle;
  VerifySetup setup;
  CheckContext context;
};

bool HasGuarantee(const std::vector<Violation>& violations,
                  const std::string& guarantee) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.guarantee == guarantee; });
}

// ---------------------------------------------------------------------------
// Registry and clean runs.
// ---------------------------------------------------------------------------

TEST(CheckerRegistryTest, ContainsAllAlgorithms) {
  std::set<std::string> names;
  for (const auto& checker : DefaultCheckers()) names.insert(checker->Name());
  const std::set<std::string> expected = {
      "count-sketch", "approx-top",   "count-min",     "count-min-cu",
      "misra-gries",  "space-saving", "lossy-counting"};
  EXPECT_EQ(names, expected);
}

TEST(CheckerRegistryTest, EveryCheckerSupportsSequential) {
  for (const auto& checker : DefaultCheckers()) {
    EXPECT_TRUE(checker->Supports(Mutation::kSequential)) << checker->Name();
  }
}

TEST(CheckerRegistryTest, RealImplementationsPassTheirOwnChecks) {
  const FuzzProgram program = BaseProgram();
  const Stream stream = *MaterializeStream(program);
  const Oracle oracle(stream);
  const VerifySetup setup =
      MakeVerifySetup(program.k, program.epsilon, 1.0, program.seed, oracle);
  for (const auto& checker : DefaultCheckers()) {
    auto built = checker->Build(stream, setup, Mutation::kSequential);
    ASSERT_TRUE(built.ok()) << checker->Name() << ": "
                            << built.status().ToString();
    EXPECT_TRUE(built->equivalence_violations.empty()) << checker->Name();
    const std::vector<Violation> violations =
        checker->Check(*built->summary, oracle, setup, built->context);
    for (const Violation& v : violations) {
      ADD_FAILURE() << checker->Name() << ": " << FormatViolation(v);
    }
  }
}

// ---------------------------------------------------------------------------
// Each guarantee fires on a broken implementation.
// ---------------------------------------------------------------------------

TEST(CheckerFiringTest, CountSketchCatchesLargeErrors) {
  const FiringHarness h;
  const FakeSummary off_by_a_mile(
      [&](ItemId q) { return h.oracle.CountOf(q) + 1000000; }, {});
  EXPECT_TRUE(HasGuarantee(h.Run("count-sketch", off_by_a_mile),
                           "per-item-error-8gamma"));
}

TEST(CheckerFiringTest, CountSketchToleratesExactEstimates) {
  const FiringHarness h;
  const FakeSummary exact([&](ItemId q) { return h.oracle.CountOf(q); }, {});
  EXPECT_TRUE(h.Run("count-sketch", exact).empty());
}

TEST(CheckerFiringTest, ApproxTopCatchesLightCandidatesAndMissingHeavies) {
  const FiringHarness h;
  // One absent item as the entire candidate list: it is below the
  // (1-eps)*n_k floor, and every true heavy item is missing.
  const FakeSummary junk_candidates(
      [&](ItemId q) { return h.oracle.CountOf(q); },
      {ItemCount{9999999999ULL, 1}});
  const std::vector<Violation> violations =
      h.Run("approx-top", junk_candidates);
  EXPECT_TRUE(HasGuarantee(violations, "candidate-below-floor"));
  EXPECT_TRUE(HasGuarantee(violations, "heavy-item-missing"));
}

TEST(CheckerFiringTest, ApproxTopStandsDownWhenPremiseUnmet) {
  FiringHarness h;
  h.context.lemma_width = 1000000;  // clamped far below the Lemma 5 width
  const FakeSummary junk_candidates(
      [&](ItemId q) { return h.oracle.CountOf(q); },
      {ItemCount{9999999999ULL, 1}});
  EXPECT_TRUE(h.Run("approx-top", junk_candidates).empty());
}

TEST(CheckerFiringTest, CountMinCatchesUnderestimates) {
  const FiringHarness h;
  const FakeSummary undercounts(
      [&](ItemId q) { return h.oracle.CountOf(q) - 1; }, {});
  EXPECT_TRUE(HasGuarantee(h.Run("count-min", undercounts),
                           "one-sided-overestimate"));
  EXPECT_TRUE(HasGuarantee(h.Run("count-min-cu", undercounts),
                           "one-sided-overestimate"));
}

TEST(CheckerFiringTest, CountMinCatchesSystematicOverestimates) {
  const FiringHarness h;
  const FakeSummary inflated(
      [&](ItemId q) { return h.oracle.CountOf(q) + 10000000; }, {});
  EXPECT_TRUE(
      HasGuarantee(h.Run("count-min", inflated), "overestimate-bound"));
}

TEST(CheckerFiringTest, MisraGriesCatchesOverestimates) {
  const FiringHarness h;
  const FakeSummary inflated(
      [&](ItemId q) { return h.oracle.CountOf(q) + 1; }, {});
  EXPECT_TRUE(
      HasGuarantee(h.Run("misra-gries", inflated), "underestimate-only"));
}

TEST(CheckerFiringTest, MisraGriesCatchesExcessiveUndercount) {
  const FiringHarness h;
  // Claims zero for everything: the top item's undercount far exceeds
  // n/(c+1) with c = 20.
  const FakeSummary silent([](ItemId) { return 0; }, {});
  EXPECT_TRUE(
      HasGuarantee(h.Run("misra-gries", silent), "undercount-bound"));
}

TEST(CheckerFiringTest, SpaceSavingCatchesUnderestimates) {
  const FiringHarness h;
  const FakeSummary undercounts(
      [&](ItemId q) { return h.oracle.CountOf(q) - 1; }, {});
  EXPECT_TRUE(
      HasGuarantee(h.Run("space-saving", undercounts), "overestimate-only"));
}

TEST(CheckerFiringTest, LossyCountingCatchesOverAndUndercount) {
  const FiringHarness h;
  const FakeSummary inflated(
      [&](ItemId q) { return h.oracle.CountOf(q) + 1; }, {});
  EXPECT_TRUE(
      HasGuarantee(h.Run("lossy-counting", inflated), "underestimate-only"));
  // eps_lc = 0.001 makes the allowed undercount ~21 occurrences; claiming
  // zero for the heavy items blows far past it.
  const FakeSummary silent([](ItemId) { return 0; }, {});
  EXPECT_TRUE(HasGuarantee(h.Run("lossy-counting", silent), "eps-deficiency"));
}

// ---------------------------------------------------------------------------
// Tolerance arithmetic.
// ---------------------------------------------------------------------------

TEST(ToleranceTest, MedianFailureProbabilityBasics) {
  EXPECT_DOUBLE_EQ(MedianFailureProbability(5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(MedianFailureProbability(0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(MedianFailureProbability(5, 1.0), 1.0);
  // Deeper sketches drive the median failure probability down (the paper's
  // t = Theta(log(n/delta)) choice).
  const double shallow = MedianFailureProbability(4, 0.1);
  const double deep = MedianFailureProbability(16, 0.1);
  EXPECT_LT(deep, shallow);
  EXPECT_GT(shallow, 0.0);
}

TEST(ToleranceTest, AllowedViolationsScalesWithMean) {
  EXPECT_EQ(AllowedViolations(100, 0.0), 4u);  // floor keeps CI deterministic
  EXPECT_GE(AllowedViolations(1000, 0.5), 500u);
  EXPECT_LT(AllowedViolations(100, 0.01), 12u);
}

// ---------------------------------------------------------------------------
// Program grammar.
// ---------------------------------------------------------------------------

TEST(ProgramTest, FormatParseRoundTrip) {
  FuzzProgram p = BaseProgram();
  p.kind = WorkloadKind::kFlows;
  p.mutation = Mutation::kSerializeMidStream;
  p.width_scale = 0.001;
  p.alpha = 1.35;
  const std::string line = FormatProgram(p);
  auto parsed = ParseProgram(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(FormatProgram(*parsed), line);
  EXPECT_EQ(parsed->kind, p.kind);
  EXPECT_EQ(parsed->mutation, p.mutation);
  EXPECT_EQ(parsed->n, p.n);
  EXPECT_EQ(parsed->seed, p.seed);
  EXPECT_DOUBLE_EQ(parsed->width_scale, p.width_scale);
}

TEST(ProgramTest, ParseRejectsMalformedInput) {
  EXPECT_TRUE(ParseProgram("kind=bogus").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("mut=bogus").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("notakey=1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("n=abc").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("n=0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("eps=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("wscale=0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseProgram("bare-token").status().IsInvalidArgument());
}

TEST(ProgramTest, MaterializeIsDeterministic) {
  for (WorkloadKind kind :
       {WorkloadKind::kZipf, WorkloadKind::kUniform, WorkloadKind::kFlows,
        WorkloadKind::kAdversarial}) {
    FuzzProgram p = BaseProgram();
    p.kind = kind;
    p.n = 5000;
    auto a = MaterializeStream(p);
    auto b = MaterializeStream(p);
    ASSERT_TRUE(a.ok()) << WorkloadKindName(kind);
    ASSERT_TRUE(b.ok()) << WorkloadKindName(kind);
    EXPECT_EQ(*a, *b) << WorkloadKindName(kind);
    // The adversarial generator's head/gap block structure may round the
    // length slightly below n; the others hit it exactly.
    EXPECT_GT(a->size(), 4500u) << WorkloadKindName(kind);
    EXPECT_LE(a->size(), 5000u) << WorkloadKindName(kind);
  }
}

TEST(ProgramTest, SeededSequenceIsDeterministicAndDiverse) {
  std::set<std::string> kinds;
  std::set<std::string> mutations;
  for (uint64_t i = 0; i < 64; ++i) {
    const FuzzProgram a = ProgramFromSeed(42, i);
    const FuzzProgram b = ProgramFromSeed(42, i);
    EXPECT_EQ(FormatProgram(a), FormatProgram(b));
    kinds.insert(WorkloadKindName(a.kind));
    mutations.insert(MutationName(a.mutation));
  }
  EXPECT_EQ(kinds.size(), 4u);  // every workload family appears
  // every metamorphic mutation appears
  EXPECT_EQ(mutations.size(), kMutationCount);
  // Different master seeds diverge.
  EXPECT_NE(FormatProgram(ProgramFromSeed(42, 0)),
            FormatProgram(ProgramFromSeed(43, 0)));
}

// ---------------------------------------------------------------------------
// Oracle probe set.
// ---------------------------------------------------------------------------

TEST(OracleTest, ProbeItemsDeterministicAndCoversHeadTailAbsent) {
  const Stream stream = *MaterializeStream(BaseProgram());
  const Oracle oracle(stream);
  const std::vector<ItemId> probes = oracle.ProbeItems(10, 64, 8, 7);
  EXPECT_EQ(probes, oracle.ProbeItems(10, 64, 8, 7));
  // The true top-2k head is always probed.
  for (const ItemCount& ic : oracle.TopK(20)) {
    EXPECT_NE(std::find(probes.begin(), probes.end(), ic.item), probes.end());
  }
  // The absent ids really are absent.
  size_t absent = 0;
  for (ItemId q : probes) {
    if (oracle.CountOf(q) == 0) ++absent;
  }
  EXPECT_EQ(absent, 8u);
  EXPECT_EQ(oracle.n(), static_cast<Count>(stream.size()));
}

}  // namespace
}  // namespace streamfreq
