// Tree-shape invariance of merge-tree aggregation (satellite of the
// distributed merge tree, docs/DISTRIBUTED.md).
//
// Property: for every counter-linear summary, merging per-leaf sketches up
// ANY tree topology — flat star, balanced, ragged random — produces a root
// state bit-identical to a flat one-shot Merge of all leaves. Merge is
// counter-wise addition, so associativity + commutativity make the shape
// invisible; this test proves it cell by cell rather than trusting the
// algebra.
//
// Counter-based summaries (Misra-Gries, Space-Saving) are NOT associative
// in general: their merge prunes. For them the property is weaker and is
// asserted as such — exact-regime equality (capacity >= distinct items)
// and one-sided error directions in the lossy regime, for every shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/ams_f2.h"
#include "core/count_min.h"
#include "core/count_sketch.h"
#include "core/group_testing.h"
#include "core/hierarchical.h"
#include "core/hierarchical_cm.h"
#include "core/misra_gries.h"
#include "core/space_saving.h"
#include "dist/tree.h"
#include "hash/random.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

// The shared battery of shapes every algorithm is merged across. Includes
// the flat star (the reference's own shape), balanced trees of several
// fanouts, and seeded ragged random trees with uneven leaf depths.
std::vector<TreeTopology> ShapeBattery(uint64_t workers, uint64_t seed) {
  std::vector<TreeTopology> shapes;
  auto star = BuildBalancedTree(workers, 0);
  EXPECT_TRUE(star.ok()) << star.status().ToString();
  if (star.ok()) shapes.push_back(std::move(*star));
  for (uint64_t fanout : {uint64_t{2}, uint64_t{3}, uint64_t{4}, uint64_t{8}}) {
    auto tree = BuildBalancedTree(workers, fanout);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    if (tree.ok()) shapes.push_back(std::move(*tree));
  }
  Xoshiro256 rng(seed);
  for (int i = 0; i < 6; ++i) {
    const uint64_t max_fanout = 1 + rng.UniformBelow(8);
    const uint64_t max_depth = 1 + rng.UniformBelow(4);
    auto tree = BuildRandomTree(workers, max_fanout, max_depth, &rng);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    if (tree.ok()) shapes.push_back(std::move(*tree));
  }
  return shapes;
}

// Per-leaf substreams: disjoint in time, deterministic in (seed, leaf).
std::vector<Stream> LeafStreams(uint64_t workers, size_t per_leaf,
                                uint64_t universe, uint64_t seed) {
  std::vector<Stream> streams;
  for (uint64_t leaf = 0; leaf < workers; ++leaf) {
    auto gen = ZipfGenerator::Make(universe, 1.1, seed ^ (0x9E37 * (leaf + 1)));
    EXPECT_TRUE(gen.ok());
    streams.push_back(gen->Take(per_leaf));
  }
  return streams;
}

// Merges `leaf_sketches` (one per topology leaf, in leaf order) up `topo`:
// one bottom-up pass folds every node into its parent, exactly the hop
// order the delta shipper uses. Returns the root accumulator.
template <typename S>
S TreeMerge(const TreeTopology& topo, const std::vector<S>& leaf_sketches,
            const S& zero) {
  std::vector<S> acc(topo.size(), zero);
  EXPECT_EQ(topo.leaves.size(), leaf_sketches.size());
  for (size_t i = 0; i < topo.leaves.size(); ++i) {
    acc[topo.leaves[i]] = leaf_sketches[i];
  }
  for (const uint64_t node : topo.BottomUpOrder()) {
    if (node == 0) continue;
    const Status merged = acc[topo.parent[node]].Merge(acc[node]);
    EXPECT_TRUE(merged.ok()) << merged.ToString();
  }
  return acc[0];
}

// Flat one-shot reference: merge every leaf into a zero sketch in leaf
// order. This is what a single aggregator holding all substreams computes.
template <typename S>
S FlatMerge(const std::vector<S>& leaf_sketches, const S& zero) {
  S root = zero;
  for (const S& leaf : leaf_sketches) {
    const Status merged = root.Merge(leaf);
    EXPECT_TRUE(merged.ok()) << merged.ToString();
  }
  return root;
}

TEST(DistTreePropertyTest, CountSketchBitIdenticalAcrossShapes) {
  for (const uint64_t workers : {uint64_t{3}, uint64_t{9}, uint64_t{16}}) {
    const auto streams = LeafStreams(workers, 4000, 1 << 16, 11 * workers);
    CountSketchParams params;
    params.depth = 5;
    params.width = 512;
    params.seed = 77;
    auto zero = CountSketch::Make(params);
    ASSERT_TRUE(zero.ok());
    std::vector<CountSketch> leaves;
    for (const Stream& s : streams) {
      CountSketch sketch = *zero;
      sketch.BatchAdd(s);
      leaves.push_back(std::move(sketch));
    }
    const CountSketch reference = FlatMerge(leaves, *zero);
    std::string ref_bytes;
    reference.SerializeTo(&ref_bytes);
    for (const TreeTopology& topo : ShapeBattery(workers, 13 * workers)) {
      const CountSketch root = TreeMerge(topo, leaves, *zero);
      std::string root_bytes;
      root.SerializeTo(&root_bytes);
      EXPECT_EQ(root_bytes, ref_bytes)
          << "shape with " << topo.size() << " nodes, depth "
          << topo.max_depth() << " changed the root sketch";
    }
  }
}

TEST(DistTreePropertyTest, CountMinCountersInvariantAcrossShapes) {
  // Only the plain variant: conservative update is order-dependent and its
  // Merge is rejected by design (CountMin::Merge returns InvalidArgument),
  // so it cannot ride the tree at all.
  {
    const uint64_t workers = 7;
    const auto streams = LeafStreams(workers, 3000, 1 << 14, 21);
    CountMinParams params;
    params.depth = 4;
    params.width = 256;
    params.seed = 5;
    auto zero = CountMin::Make(params);
    ASSERT_TRUE(zero.ok());
    std::vector<CountMin> leaves;
    for (const Stream& s : streams) {
      CountMin sketch = *zero;
      sketch.BatchAdd(s);
      leaves.push_back(std::move(sketch));
    }
    const CountMin reference = FlatMerge(leaves, *zero);
    for (const TreeTopology& topo : ShapeBattery(workers, 23)) {
      const CountMin root = TreeMerge(topo, leaves, *zero);
      for (size_t row = 0; row < params.depth; ++row) {
        for (size_t bucket = 0; bucket < params.width; ++bucket) {
          ASSERT_EQ(root.CounterAt(row, bucket),
                    reference.CounterAt(row, bucket))
              << "row=" << row << " bucket=" << bucket;
        }
      }
    }
  }
}

TEST(DistTreePropertyTest, AmsF2CountersInvariantAcrossShapes) {
  const uint64_t workers = 6;
  const auto streams = LeafStreams(workers, 2500, 1 << 14, 31);
  AmsF2Params params;
  params.groups = 8;
  params.atoms_per_group = 16;
  params.seed = 3;
  auto zero = AmsF2Sketch::Make(params);
  ASSERT_TRUE(zero.ok());
  std::vector<AmsF2Sketch> leaves;
  for (const Stream& s : streams) {
    AmsF2Sketch sketch = *zero;
    for (const ItemId q : s) sketch.Add(q);
    leaves.push_back(std::move(sketch));
  }
  const AmsF2Sketch reference = FlatMerge(leaves, *zero);
  const auto ref_counters = reference.counters();
  for (const TreeTopology& topo : ShapeBattery(workers, 37)) {
    const AmsF2Sketch root = TreeMerge(topo, leaves, *zero);
    const auto counters = root.counters();
    ASSERT_EQ(counters.size(), ref_counters.size());
    for (size_t i = 0; i < counters.size(); ++i) {
      ASSERT_EQ(counters[i], ref_counters[i]) << "atom " << i;
    }
  }
}

TEST(DistTreePropertyTest, GroupTestingCountersInvariantAcrossShapes) {
  const uint64_t workers = 5;
  const auto streams = LeafStreams(workers, 2500, 1 << 12, 41);
  GroupTestingParams params;
  params.depth = 3;
  params.groups = 64;
  params.key_bits = 16;
  params.seed = 9;
  auto zero = GroupTestingSketch::Make(params);
  ASSERT_TRUE(zero.ok());
  std::vector<GroupTestingSketch> leaves;
  for (const Stream& s : streams) {
    GroupTestingSketch sketch = *zero;
    for (const ItemId q : s) sketch.Add(q & 0xFFFF);
    leaves.push_back(std::move(sketch));
  }
  const GroupTestingSketch reference = FlatMerge(leaves, *zero);
  const auto ref_counters = reference.counters();
  for (const TreeTopology& topo : ShapeBattery(workers, 43)) {
    const GroupTestingSketch root = TreeMerge(topo, leaves, *zero);
    const auto counters = root.counters();
    ASSERT_EQ(counters.size(), ref_counters.size());
    for (size_t i = 0; i < counters.size(); ++i) {
      ASSERT_EQ(counters[i], ref_counters[i]) << "counter " << i;
    }
  }
}

TEST(DistTreePropertyTest, HierarchicalEstimatesInvariantAcrossShapes) {
  // No raw counter accessor here; the dyadic structure is a stack of
  // linear sketches, so probe equality on points, ranges, and ranks across
  // shapes is the observable form of the same invariant.
  const uint64_t workers = 6;
  const auto streams = LeafStreams(workers, 2000, 1 << 12, 51);
  HierarchicalParams params;
  params.bits = 12;
  params.depth = 4;
  params.width = 256;
  params.seed = 7;
  auto zero_cs = HierarchicalCountSketch::Make(params);
  auto zero_cm = HierarchicalCountMin::Make(params);
  ASSERT_TRUE(zero_cs.ok() && zero_cm.ok());
  std::vector<HierarchicalCountSketch> cs_leaves;
  std::vector<HierarchicalCountMin> cm_leaves;
  for (const Stream& s : streams) {
    HierarchicalCountSketch cs = *zero_cs;
    HierarchicalCountMin cm = *zero_cm;
    for (const ItemId q : s) {
      cs.Add(q & 0xFFF);
      cm.Add(q & 0xFFF);
    }
    cs_leaves.push_back(std::move(cs));
    cm_leaves.push_back(std::move(cm));
  }
  const HierarchicalCountSketch cs_ref = FlatMerge(cs_leaves, *zero_cs);
  const HierarchicalCountMin cm_ref = FlatMerge(cm_leaves, *zero_cm);
  Xoshiro256 rng(53);
  std::vector<uint64_t> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(rng.UniformBelow(1 << 12));
  for (const TreeTopology& topo : ShapeBattery(workers, 59)) {
    const HierarchicalCountSketch cs_root = TreeMerge(topo, cs_leaves, *zero_cs);
    const HierarchicalCountMin cm_root = TreeMerge(topo, cm_leaves, *zero_cm);
    for (const uint64_t key : probes) {
      ASSERT_EQ(cs_root.EstimatePoint(key), cs_ref.EstimatePoint(key));
      ASSERT_EQ(cm_root.EstimatePoint(key), cm_ref.EstimatePoint(key));
    }
    auto range_root = cs_root.EstimateRange(100, 3000);
    auto range_ref = cs_ref.EstimateRange(100, 3000);
    ASSERT_TRUE(range_root.ok() && range_ref.ok());
    ASSERT_EQ(*range_root, *range_ref);
  }
}

TEST(DistTreePropertyTest, MisraGriesExactRegimeAcrossShapes) {
  // Capacity >= distinct items: no decrements anywhere in the tree, so the
  // merge is exact addition and the shape cannot matter.
  const uint64_t workers = 8;
  const uint64_t universe = 48;
  const auto streams = LeafStreams(workers, 2000, universe, 61);
  ExactCounter exact;
  for (const Stream& s : streams) exact.AddAll(s);
  ASSERT_LE(exact.Distinct(), 512u);
  auto zero = MisraGries::Make(512);
  ASSERT_TRUE(zero.ok());
  std::vector<MisraGries> leaves;
  for (const Stream& s : streams) {
    MisraGries mg = *zero;
    for (const ItemId q : s) mg.Add(q);
    leaves.push_back(std::move(mg));
  }
  for (const TreeTopology& topo : ShapeBattery(workers, 67)) {
    const MisraGries root = TreeMerge(topo, leaves, *zero);
    EXPECT_EQ(root.MaxError(), 0u);
    for (const auto& [item, count] : exact.counts()) {
      ASSERT_EQ(root.Estimate(item), count) << "item " << item;
    }
  }
}

TEST(DistTreePropertyTest, SpaceSavingExactRegimeAcrossShapes) {
  const uint64_t workers = 8;
  const uint64_t universe = 48;
  const auto streams = LeafStreams(workers, 2000, universe, 71);
  ExactCounter exact;
  for (const Stream& s : streams) exact.AddAll(s);
  ASSERT_LE(exact.Distinct(), 512u);
  auto zero = SpaceSaving::Make(512);
  ASSERT_TRUE(zero.ok());
  std::vector<SpaceSaving> leaves;
  for (const Stream& s : streams) {
    SpaceSaving ss = *zero;
    for (const ItemId q : s) ss.Add(q);
    leaves.push_back(std::move(ss));
  }
  for (const TreeTopology& topo : ShapeBattery(workers, 73)) {
    const SpaceSaving root = TreeMerge(topo, leaves, *zero);
    for (const auto& [item, count] : exact.counts()) {
      ASSERT_EQ(root.Estimate(item), count) << "item " << item;
    }
  }
}

TEST(DistTreePropertyTest, LossyRegimeDirectionInvariantsAcrossShapes) {
  // Under-capacity summaries prune during tree merges, so equality is off
  // the table — but the one-sided error directions must survive EVERY
  // shape: Misra-Gries never overestimates, Space-Saving never
  // underestimates a tracked item.
  const uint64_t workers = 6;
  const auto streams = LeafStreams(workers, 5000, 4000, 79);
  ExactCounter exact;
  for (const Stream& s : streams) exact.AddAll(s);
  auto mg_zero = MisraGries::Make(32);
  auto ss_zero = SpaceSaving::Make(32);
  ASSERT_TRUE(mg_zero.ok() && ss_zero.ok());
  std::vector<MisraGries> mg_leaves;
  std::vector<SpaceSaving> ss_leaves;
  for (const Stream& s : streams) {
    MisraGries mg = *mg_zero;
    SpaceSaving ss = *ss_zero;
    for (const ItemId q : s) {
      mg.Add(q);
      ss.Add(q);
    }
    mg_leaves.push_back(std::move(mg));
    ss_leaves.push_back(std::move(ss));
  }
  for (const TreeTopology& topo : ShapeBattery(workers, 83)) {
    const MisraGries mg_root = TreeMerge(topo, mg_leaves, *mg_zero);
    const SpaceSaving ss_root = TreeMerge(topo, ss_leaves, *ss_zero);
    for (const ItemCount& entry : mg_root.Candidates(32)) {
      ASSERT_LE(mg_root.Estimate(entry.item), exact.CountOf(entry.item))
          << "Misra-Gries overestimated item " << entry.item;
    }
    for (const ItemCount& entry : ss_root.Candidates(32)) {
      ASSERT_GE(entry.count, exact.CountOf(entry.item))
          << "Space-Saving underestimated item " << entry.item;
    }
  }
}

TEST(DistTreePropertyTest, ShapeBatteryIsWellFormed) {
  // The battery itself must exercise what it claims: every shape has the
  // requested number of leaves, valid parent links, and a bottom-up order
  // that visits children before parents.
  const uint64_t workers = 9;
  for (const TreeTopology& topo : ShapeBattery(workers, 89)) {
    EXPECT_EQ(topo.leaves.size(), workers);
    EXPECT_EQ(topo.parent[0], 0u);
    for (uint64_t node = 1; node < topo.size(); ++node) {
      EXPECT_LT(topo.parent[node], node);
      EXPECT_EQ(topo.depth[node], topo.depth[topo.parent[node]] + 1);
    }
    const auto order = topo.BottomUpOrder();
    EXPECT_EQ(order.size(), topo.size());
    std::vector<bool> seen(topo.size(), false);
    for (const uint64_t node : order) {
      if (node != 0) {
        EXPECT_FALSE(seen[topo.parent[node]])
            << "parent of " << node << " visited before its child";
      }
      seen[node] = true;
    }
  }
}

}  // namespace
}  // namespace streamfreq
