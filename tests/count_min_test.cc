#include "core/count_min.h"

#include <gtest/gtest.h>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

CountMinParams SmallParams() {
  CountMinParams p;
  p.depth = 4;
  p.width = 256;
  p.seed = 11;
  return p;
}

TEST(CountMinTest, RejectsBadParams) {
  CountMinParams p = SmallParams();
  p.depth = 0;
  EXPECT_TRUE(CountMin::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.width = 0;
  EXPECT_TRUE(CountMin::Make(p).status().IsInvalidArgument());
}

TEST(CountMinTest, SingleItemExact) {
  auto s = CountMin::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(5, 42);
  EXPECT_EQ(s->Estimate(5), 42);
  EXPECT_EQ(s->Estimate(6), 0);
}

TEST(CountMinTest, NeverUnderestimates) {
  auto gen = ZipfGenerator::Make(5000, 1.0, 17);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  auto s = CountMin::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  for (ItemId q : stream) s->Add(q);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_GE(s->Estimate(item), count) << "CMS must overestimate";
  }
}

TEST(CountMinTest, ConservativeNeverUnderestimatesAndIsTighter) {
  auto gen = ZipfGenerator::Make(5000, 1.0, 19);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  auto plain = CountMin::Make(SmallParams());
  CountMinParams cup = SmallParams();
  cup.conservative = true;
  auto cu = CountMin::Make(cup);
  ASSERT_TRUE(plain.ok() && cu.ok());
  for (ItemId q : stream) {
    plain->Add(q);
    cu->Add(q);
  }

  double plain_err = 0, cu_err = 0;
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_GE(cu->Estimate(item), count) << "CU must still overestimate";
    plain_err += static_cast<double>(plain->Estimate(item) - count);
    cu_err += static_cast<double>(cu->Estimate(item) - count);
  }
  EXPECT_LE(cu_err, plain_err) << "conservative update cannot be worse";
  EXPECT_LT(cu_err, plain_err * 0.9) << "and should be measurably better";
}

TEST(CountMinTest, ErrorBoundedByEpsN) {
  // Classic guarantee: est <= true + (e / width) * n w.h.p. Use 2e/width
  // to keep the test robust at depth 4.
  auto gen = ZipfGenerator::Make(5000, 1.0, 23);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto s = CountMin::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  for (ItemId q : stream) s->Add(q);

  const double bound =
      2.0 * 2.718281828 / 256.0 * static_cast<double>(stream.size());
  size_t violations = 0;
  for (const auto& [item, count] : oracle.counts()) {
    if (static_cast<double>(s->Estimate(item) - count) > bound) ++violations;
  }
  EXPECT_LE(violations, oracle.Distinct() / 100)
      << "more than 1% of items exceeded the eps*n bound";
}

TEST(CountMinTest, MergeMatchesUnion) {
  auto a = CountMin::Make(SmallParams());
  auto b = CountMin::Make(SmallParams());
  auto both = CountMin::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok() && both.ok());
  for (ItemId q = 1; q <= 100; ++q) {
    a->Add(q, 2);
    both->Add(q, 2);
  }
  for (ItemId q = 50; q <= 150; ++q) {
    b->Add(q, 3);
    both->Add(q, 3);
  }
  ASSERT_TRUE(a->Merge(*b).ok());
  for (ItemId q = 1; q <= 150; ++q) {
    EXPECT_EQ(a->Estimate(q), both->Estimate(q));
  }
}

TEST(CountMinTest, MergeRejectsIncompatibleAndConservative) {
  auto a = CountMin::Make(SmallParams());
  CountMinParams p = SmallParams();
  p.seed = 12;
  auto b = CountMin::Make(p);
  p = SmallParams();
  p.conservative = true;
  auto cu1 = CountMin::Make(p);
  auto cu2 = CountMin::Make(p);
  ASSERT_TRUE(a.ok() && b.ok() && cu1.ok() && cu2.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
  EXPECT_TRUE(cu1->Merge(*cu2).IsInvalidArgument())
      << "CU sketches are not linear";
}

TEST(CountMinTest, SpaceBytesCoversCounters) {
  auto s = CountMin::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->SpaceBytes(), 4 * 256 * sizeof(int64_t));
}

}  // namespace
}  // namespace streamfreq
