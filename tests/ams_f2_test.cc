#include "core/ams_f2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/workload.h"

namespace streamfreq {
namespace {

AmsF2Params DefaultParams() {
  AmsF2Params p;
  p.groups = 9;
  p.atoms_per_group = 32;
  p.seed = 11;
  return p;
}

TEST(AmsF2Test, RejectsBadParams) {
  AmsF2Params p = DefaultParams();
  p.groups = 0;
  EXPECT_TRUE(AmsF2Sketch::Make(p).status().IsInvalidArgument());
  p = DefaultParams();
  p.atoms_per_group = 0;
  EXPECT_TRUE(AmsF2Sketch::Make(p).status().IsInvalidArgument());
}

TEST(AmsF2Test, EmptySketchEstimatesZero) {
  auto s = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->Estimate(), 0.0);
}

TEST(AmsF2Test, SingleItemIsExact) {
  // One item with count c: every counter is +/- c, so c^2 exactly.
  auto s = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(s.ok());
  s->Add(7, 100);
  EXPECT_DOUBLE_EQ(s->Estimate(), 10000.0);
}

TEST(AmsF2Test, EstimatesZipfF2Within20Percent) {
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 7);
  ASSERT_TRUE(workload.ok());
  const double truth = workload->oracle.ResidualF2(0);

  auto s = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(s.ok());
  for (ItemId q : workload->stream) s->Add(q);
  EXPECT_NEAR(s->Estimate(), truth, 0.2 * truth);
}

TEST(AmsF2Test, EstimatesUniformF2Within20Percent) {
  auto workload = MakeZipfWorkload(5000, 0.0, 100000, 9);
  ASSERT_TRUE(workload.ok());
  const double truth = workload->oracle.ResidualF2(0);
  auto s = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(s.ok());
  for (ItemId q : workload->stream) s->Add(q);
  EXPECT_NEAR(s->Estimate(), truth, 0.2 * truth);
}

TEST(AmsF2Test, UnbiasedAcrossSeeds) {
  // Mean of single-atom estimates over many seeds must track F2.
  auto workload = MakeZipfWorkload(1000, 1.0, 20000, 13);
  ASSERT_TRUE(workload.ok());
  const double truth = workload->oracle.ResidualF2(0);

  double sum = 0.0;
  constexpr int kSeeds = 60;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    AmsF2Params p;
    p.groups = 1;
    p.atoms_per_group = 8;
    p.seed = static_cast<uint64_t>(seed) * 7919;
    auto s = AmsF2Sketch::Make(p);
    ASSERT_TRUE(s.ok());
    for (ItemId q : workload->stream) s->Add(q);
    sum += s->Estimate();
  }
  // Var of an 8-atom mean <= 2 F2^2 / 8; stderr over 60 seeds ~ F2 * 0.065.
  EXPECT_NEAR(sum / kSeeds, truth, 0.35 * truth);
}

TEST(AmsF2Test, TurnstileDeletionsReduceF2) {
  auto s = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(s.ok());
  s->Add(1, 100);
  s->Add(2, 100);
  const double before = s->Estimate();
  s->Add(2, -100);  // delete item 2 entirely
  EXPECT_DOUBLE_EQ(s->Estimate(), 10000.0);
  EXPECT_LT(s->Estimate(), before);
}

TEST(AmsF2Test, MergeSketchesUnion) {
  auto a = AmsF2Sketch::Make(DefaultParams());
  auto b = AmsF2Sketch::Make(DefaultParams());
  ASSERT_TRUE(a.ok() && b.ok());
  a->Add(1, 30);
  b->Add(1, 70);  // same item split across sketches
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_DOUBLE_EQ(a->Estimate(), 10000.0);
}

TEST(AmsF2Test, MergeRejectsIncompatible) {
  auto a = AmsF2Sketch::Make(DefaultParams());
  AmsF2Params p = DefaultParams();
  p.seed = 12;
  auto b = AmsF2Sketch::Make(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
}

}  // namespace
}  // namespace streamfreq
