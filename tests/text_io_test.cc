#include "stream/text_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

namespace streamfreq {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream(path, std::ios::binary) << content;
  return path;
}

std::vector<std::string> Tokens(const std::string& path,
                                const TextReaderOptions& options = {}) {
  std::vector<std::string> out;
  auto count = ForEachToken(path, options,
                            [&](const std::string& t) { out.push_back(t); });
  EXPECT_TRUE(count.ok()) << count.status().ToString();
  if (count.ok()) {
    EXPECT_EQ(*count, out.size());
  }
  return out;
}

TEST(TextIoTest, MissingFileIsIoError) {
  auto r = ForEachToken("/nonexistent/sfq.txt", {}, [](const std::string&) {});
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(TextIoTest, SplitsOnWhitespaceAndPunctuation) {
  const std::string path =
      WriteTemp("sfq_text1.txt", "Hello, world! streaming\nalgorithms.");
  const auto tokens = Tokens(path);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "streaming");
  EXPECT_EQ(tokens[3], "algorithms");
  std::remove(path.c_str());
}

TEST(TextIoTest, LowercaseCanBeDisabled) {
  const std::string path = WriteTemp("sfq_text2.txt", "MiXeD Case");
  TextReaderOptions opts;
  opts.lowercase = false;
  const auto tokens = Tokens(path, opts);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "MiXeD");
  EXPECT_EQ(tokens[1], "Case");
  std::remove(path.c_str());
}

TEST(TextIoTest, ApostrophesAndHyphensStayInside) {
  const std::string path = WriteTemp("sfq_text3.txt", "don't re-use");
  const auto tokens = Tokens(path);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "don't");
  EXPECT_EQ(tokens[1], "re-use");
  std::remove(path.c_str());
}

TEST(TextIoTest, DigitsControlledByOption) {
  const std::string path = WriteTemp("sfq_text4.txt", "top10 abc123");
  const auto with_digits = Tokens(path);
  ASSERT_EQ(with_digits.size(), 2u);
  EXPECT_EQ(with_digits[0], "top10");

  TextReaderOptions opts;
  opts.keep_digits = false;
  const auto without = Tokens(path, opts);
  ASSERT_EQ(without.size(), 2u) << "digits act as delimiters when disabled";
  EXPECT_EQ(without[0], "top");
  EXPECT_EQ(without[1], "abc");
  std::remove(path.c_str());
}

TEST(TextIoTest, MinLengthFilters) {
  const std::string path = WriteTemp("sfq_text5.txt", "a bb ccc dddd");
  TextReaderOptions opts;
  opts.min_token_length = 3;
  const auto tokens = Tokens(path, opts);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "ccc");
  EXPECT_EQ(tokens[1], "dddd");
  std::remove(path.c_str());
}

TEST(TextIoTest, EmptyFileEmitsNothing) {
  const std::string path = WriteTemp("sfq_text6.txt", "");
  EXPECT_TRUE(Tokens(path).empty());
  std::remove(path.c_str());
}

TEST(TextIoTest, TrailingTokenWithoutDelimiterEmitted) {
  const std::string path = WriteTemp("sfq_text7.txt", "last");
  const auto tokens = Tokens(path);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "last");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamfreq
