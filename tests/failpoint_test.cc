#include "util/failpoint.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace streamfreq {
namespace {

TEST(FailpointTest, DisarmedEvaluatesToNone) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.Disarm();
  EXPECT_FALSE(reg.armed());
  EXPECT_FALSE(SFQ_FAILPOINT("batch_queue.push"));
  EXPECT_EQ(reg.TotalFires(), 0u);
}

TEST(FailpointTest, SimpleClauseAlwaysFires) {
  ScopedFailpoints fp("batch_queue.push=error", 1);
  ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
  FailpointRegistry& reg = FailpointRegistry::Global();
  for (int i = 0; i < 5; ++i) {
    const FailDecision d = reg.Evaluate("batch_queue.push");
    EXPECT_EQ(d.action, FailAction::kError);
  }
  EXPECT_EQ(reg.Fires("batch_queue.push"), 5u);
  // Other sites stay quiet.
  EXPECT_FALSE(reg.Evaluate("batch_queue.pop"));
}

TEST(FailpointTest, CountBudgetCapsFires) {
  ScopedFailpoints fp("ingestor.worker_batch=crash*2", 7);
  ASSERT_TRUE(fp.status().ok());
  FailpointRegistry& reg = FailpointRegistry::Global();
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (reg.Evaluate("ingestor.worker_batch")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(reg.Fires("ingestor.worker_batch"), 2u);
}

TEST(FailpointTest, ParamAndProbabilityParse) {
  ScopedFailpoints fp("batch_queue.pop=stall:25@1.0;sketch_io.write=torn:12",
                      11);
  ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
  FailpointRegistry& reg = FailpointRegistry::Global();
  const FailDecision stall = reg.Evaluate("batch_queue.pop");
  EXPECT_EQ(stall.action, FailAction::kStall);
  EXPECT_EQ(stall.param, 25u);
  const FailDecision torn = reg.Evaluate("sketch_io.write");
  EXPECT_EQ(torn.action, FailAction::kTorn);
  EXPECT_EQ(torn.param, 12u);
}

TEST(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    ScopedFailpoints fp("sketch_io.read=error@0.3", seed);
    EXPECT_TRUE(fp.status().ok());
    std::vector<bool> rolls;
    for (int i = 0; i < 64; ++i) {
      rolls.push_back(
          static_cast<bool>(FailpointRegistry::Global().Evaluate(
              "sketch_io.read")));
    }
    return rolls;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // p=0.3 over 64 rolls: some fire, some pass.
  size_t fires = 0;
  for (const bool hit : a) fires += hit ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST(FailpointTest, BitFlipZeroParamDrawsSeededBit) {
  ScopedFailpoints fp("sketch_io.read=bitflip", 5);
  ASSERT_TRUE(fp.status().ok());
  const FailDecision d =
      FailpointRegistry::Global().Evaluate("sketch_io.read");
  EXPECT_EQ(d.action, FailAction::kBitFlip);
  EXPECT_NE(d.param, 0u);  // seeded draw replaces the 0 sentinel
}

TEST(FailpointTest, OffClauseDisablesSite) {
  ScopedFailpoints fp("batch_queue.push=off", 1);
  ASSERT_TRUE(fp.status().ok());
  EXPECT_FALSE(FailpointRegistry::Global().armed());
  EXPECT_FALSE(FailpointRegistry::Global().Evaluate("batch_queue.push"));
}

TEST(FailpointTest, RejectsUnknownSiteActionAndMalformedClauses) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  const auto rejected = [&reg](const std::string& spec) {
    return reg.Configure(spec, 1).IsInvalidArgument();
  };
  EXPECT_TRUE(rejected("no_such.site=error"));
  EXPECT_FALSE(reg.armed());
  EXPECT_TRUE(rejected("batch_queue.push=explode"));
  EXPECT_TRUE(rejected("batch_queue.push"));
  EXPECT_TRUE(rejected("batch_queue.push=error@1.5"));
  EXPECT_TRUE(rejected("batch_queue.push=error*0"));
  EXPECT_TRUE(rejected("batch_queue.push=error:abc"));
  EXPECT_FALSE(reg.armed());
}

TEST(FailpointTest, KnownSitesListIsStableAndValidated) {
  const std::vector<std::string>& sites = FailpointRegistry::KnownSites();
  EXPECT_GE(sites.size(), 7u);
  for (const std::string& site : sites) {
    EXPECT_TRUE(FailpointRegistry::IsKnownSite(site));
    ScopedFailpoints fp(site + "=error*1", 1);
    EXPECT_TRUE(fp.status().ok()) << site;
  }
  EXPECT_FALSE(FailpointRegistry::IsKnownSite("batch_queue"));
}

TEST(FailpointTest, ConcurrentEvaluateIsSafe) {
  ScopedFailpoints fp("ingestor.worker_batch=error@0.5", 99);
  ASSERT_TRUE(fp.status().ok());
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        (void)FailpointRegistry::Global().Evaluate("ingestor.worker_batch");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t fires = FailpointRegistry::Global().Fires(
      "ingestor.worker_batch");
  EXPECT_GT(fires, 0u);
  EXPECT_LE(fires, 4000u);
}

}  // namespace
}  // namespace streamfreq
