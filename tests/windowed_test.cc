#include "core/windowed.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "hash/random.h"

namespace streamfreq {
namespace {

WindowedSketchParams SmallParams(uint64_t window, size_t blocks) {
  WindowedSketchParams p;
  p.window = window;
  p.blocks = blocks;
  p.sketch.depth = 5;
  p.sketch.width = 1024;
  p.sketch.seed = 17;
  return p;
}

TEST(WindowedTest, RejectsBadParams) {
  EXPECT_TRUE(
      WindowedCountSketch::Make(SmallParams(100, 0)).status().IsInvalidArgument());
  EXPECT_TRUE(
      WindowedCountSketch::Make(SmallParams(3, 8)).status().IsInvalidArgument());
  WindowedSketchParams p = SmallParams(100, 4);
  p.sketch.width = 0;
  EXPECT_TRUE(WindowedCountSketch::Make(p).status().IsInvalidArgument());
}

TEST(WindowedTest, BehavesExactlyLikeSketchBeforeWindowFills) {
  auto w = WindowedCountSketch::Make(SmallParams(10000, 4));
  ASSERT_TRUE(w.ok());
  for (int i = 0; i < 500; ++i) w->Add(7);
  EXPECT_EQ(w->Estimate(7), 500);
  EXPECT_EQ(w->CoveredItems(), 500u);
  EXPECT_EQ(w->TotalItems(), 500u);
}

TEST(WindowedTest, OldItemsExpire) {
  // Window of 1000 in 4 blocks of 250: an item seen only at the start must
  // vanish once > ~1000 newer items arrive.
  auto w = WindowedCountSketch::Make(SmallParams(1000, 4));
  ASSERT_TRUE(w.ok());
  for (int i = 0; i < 200; ++i) w->Add(42);
  EXPECT_EQ(w->Estimate(42), 200);

  Xoshiro256 rng(3);
  for (int i = 0; i < 1500; ++i) w->Add(1000 + rng.UniformBelow(100000));
  EXPECT_LT(std::abs(w->Estimate(42)), 10)
      << "expired item must estimate ~0 (only live-item collision noise)";
  EXPECT_LE(w->CoveredItems(), 1000u);
  EXPECT_GT(w->CoveredItems(), 750u) << "window must cover W - W/R items";
}

TEST(WindowedTest, RecentItemsFullyCounted) {
  auto w = WindowedCountSketch::Make(SmallParams(1000, 4));
  ASSERT_TRUE(w.ok());
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) w->Add(1000 + rng.UniformBelow(100000));
  // 100 fresh arrivals of one item, all inside the window.
  for (int i = 0; i < 100; ++i) w->Add(77);
  EXPECT_EQ(w->Estimate(77), 100);
}

TEST(WindowedTest, CoverageOscillatesWithinOneBlock) {
  auto w = WindowedCountSketch::Make(SmallParams(800, 8));  // blocks of 100
  ASSERT_TRUE(w.ok());
  for (int i = 0; i < 10000; ++i) {
    w->Add(static_cast<ItemId>(i));
    if (i > 800) {
      ASSERT_LE(w->CoveredItems(), 800u);
      ASSERT_GE(w->CoveredItems(), 700u);
    }
  }
  EXPECT_EQ(w->TotalItems(), 10000u);
}

TEST(WindowedTest, WeightedArrivalStraddlingBlocks) {
  auto w = WindowedCountSketch::Make(SmallParams(400, 4));  // blocks of 100
  ASSERT_TRUE(w.ok());
  w->Add(5, 250);  // spans 2.5 blocks
  EXPECT_EQ(w->Estimate(5), 250);
  EXPECT_EQ(w->CoveredItems(), 250u);
  // Push the first blocks out.
  w->Add(6, 400);
  EXPECT_LT(w->Estimate(5), 250) << "part of the bulk arrival must expire";
}

TEST(WindowedTest, SlidingTopItemChanges) {
  // Epoch 1: item A dominates. Epoch 2: item B. After epoch 2 the window
  // must rank B >> A.
  auto w = WindowedCountSketch::Make(SmallParams(2000, 8));
  ASSERT_TRUE(w.ok());
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    w->Add(i % 3 == 0 ? 111 : 100000 + rng.UniformBelow(10000));
  }
  EXPECT_GT(w->Estimate(111), 500);
  for (int i = 0; i < 2500; ++i) {
    w->Add(i % 3 == 0 ? 222 : 200000 + rng.UniformBelow(10000));
  }
  EXPECT_LT(w->Estimate(111), 100);
  EXPECT_GT(w->Estimate(222), 500);
}

TEST(WindowedTest, SpaceCountsAllBlocksPlusMerged) {
  auto w = WindowedCountSketch::Make(SmallParams(1000, 4));
  ASSERT_TRUE(w.ok());
  // 4 blocks + merged = 5 sketches of 5x1024 counters.
  EXPECT_GE(w->SpaceBytes(), 5u * 5u * 1024u * sizeof(int64_t));
}

}  // namespace
}  // namespace streamfreq
