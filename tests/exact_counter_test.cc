#include "stream/exact_counter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamfreq {
namespace {

TEST(ExactCounterTest, EmptyCounter) {
  ExactCounter c;
  EXPECT_EQ(c.Distinct(), 0u);
  EXPECT_EQ(c.TotalCount(), 0);
  EXPECT_EQ(c.CountOf(1), 0);
  EXPECT_EQ(c.NthCount(1), 0);
  EXPECT_DOUBLE_EQ(c.ResidualF2(0), 0.0);
  EXPECT_TRUE(c.TopK(5).empty());
}

TEST(ExactCounterTest, CountsAndTotals) {
  ExactCounter c;
  c.Add(1);
  c.Add(1);
  c.Add(2, 5);
  EXPECT_EQ(c.CountOf(1), 2);
  EXPECT_EQ(c.CountOf(2), 5);
  EXPECT_EQ(c.CountOf(3), 0);
  EXPECT_EQ(c.Distinct(), 2u);
  EXPECT_EQ(c.TotalCount(), 7);
}

TEST(ExactCounterTest, AddAllMatchesLoop) {
  ExactCounter c;
  c.AddAll({7, 7, 8, 7});
  EXPECT_EQ(c.CountOf(7), 3);
  EXPECT_EQ(c.CountOf(8), 1);
}

TEST(ExactCounterTest, SortedByCountDescWithIdTiebreak) {
  ExactCounter c;
  c.Add(10, 3);
  c.Add(20, 5);
  c.Add(30, 3);
  const auto sorted = c.SortedByCount();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].item, 20u);
  EXPECT_EQ(sorted[1].item, 10u) << "ties break by ascending id";
  EXPECT_EQ(sorted[2].item, 30u);
}

TEST(ExactCounterTest, TopKClipsAndNthCount) {
  ExactCounter c;
  c.Add(1, 10);
  c.Add(2, 20);
  c.Add(3, 30);
  EXPECT_EQ(c.TopK(2).size(), 2u);
  EXPECT_EQ(c.TopK(10).size(), 3u);
  EXPECT_EQ(c.NthCount(1), 30);
  EXPECT_EQ(c.NthCount(3), 10);
  EXPECT_EQ(c.NthCount(4), 0);
  EXPECT_EQ(c.NthCount(0), 0);
}

TEST(ExactCounterTest, ResidualF2DropsHead) {
  ExactCounter c;
  c.Add(1, 10);
  c.Add(2, 4);
  c.Add(3, 3);
  EXPECT_DOUBLE_EQ(c.ResidualF2(0), 100.0 + 16.0 + 9.0);
  EXPECT_DOUBLE_EQ(c.ResidualF2(1), 16.0 + 9.0);
  EXPECT_DOUBLE_EQ(c.ResidualF2(2), 9.0);
  EXPECT_DOUBLE_EQ(c.ResidualF2(3), 0.0);
  EXPECT_DOUBLE_EQ(c.ResidualF2(99), 0.0);
}

TEST(ExactCounterTest, GammaIsSqrtResidualOverWidth) {
  ExactCounter c;
  c.Add(1, 10);
  c.Add(2, 4);
  EXPECT_DOUBLE_EQ(c.Gamma(1, 4), std::sqrt(16.0 / 4.0));
  EXPECT_DOUBLE_EQ(c.Gamma(0, 0), 0.0) << "width 0 guarded";
}

TEST(ExactCounterTest, TurnstileNegativeCounts) {
  ExactCounter c;
  c.Add(5, 3);
  c.Add(5, -4);
  EXPECT_EQ(c.CountOf(5), -1);
  EXPECT_EQ(c.TotalCount(), -1);
}

}  // namespace
}  // namespace streamfreq
