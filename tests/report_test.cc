#include "eval/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace streamfreq {
namespace {

TEST(ReportTest, PrintsTableWithoutEnvVar) {
  unsetenv("SFQ_CSV_DIR");
  TablePrinter table({"a"});
  table.AddRow({"1"});
  std::ostringstream os;
  EmitTable(table, "unit_test_exp", os);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
  EXPECT_EQ(os.str().find("csv:"), std::string::npos);
}

TEST(ReportTest, WritesCsvWhenEnvVarSet) {
  const std::string dir = ::testing::TempDir();
  setenv("SFQ_CSV_DIR", dir.c_str(), 1);
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  EmitTable(table, "unit_test_exp2", os);
  unsetenv("SFQ_CSV_DIR");

  const std::string path = dir + "/unit_test_exp2.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "x,y\n1,2\n");
  EXPECT_NE(os.str().find("csv:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, BadCsvDirDoesNotAbort) {
  setenv("SFQ_CSV_DIR", "/nonexistent-dir-xyz", 1);
  TablePrinter table({"a"});
  table.AddRow({"1"});
  std::ostringstream os;
  EmitTable(table, "unit_test_exp3", os);  // must not crash
  unsetenv("SFQ_CSV_DIR");
  EXPECT_NE(os.str().find("| a"), std::string::npos);
}

}  // namespace
}  // namespace streamfreq
