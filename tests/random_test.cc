#include "hash/random.h"

#include <gtest/gtest.h>

#include <set>

namespace streamfreq {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(SplitMix64Test, NextNonZeroNeverZero) {
  SplitMix64 sm(0);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(sm.NextNonZero(), 0u);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, UniformBelowInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformBelow(1), 0u);
}

TEST(Xoshiro256Test, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; stderr ~ 0.0009 at 100k draws.
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformBelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformBelow(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 600) << "bucket " << b;
  }
}

TEST(Xoshiro256Test, OutputsLookDistinct) {
  Xoshiro256 rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 1000u) << "64-bit outputs should not collide";
}

}  // namespace
}  // namespace streamfreq
