// ParallelIngestor contracts: merged parallel ingestion is bit-identical to
// sequential ingestion for linear sketches at every thread count, and
// guarantee-preserving for counter summaries; snapshots are readable while
// workers are writing (the test ThreadSanitizer exercises).
#include "concurrent/parallel_ingestor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include <map>

#include "core/count_min.h"
#include "core/count_sketch.h"
#include "core/misra_gries.h"
#include "core/space_saving.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"
#include "util/failpoint.h"

namespace streamfreq {
namespace {

CountSketchParams SketchParams() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 1024;
  p.seed = 77;
  return p;
}

Stream MakeZipfStream(size_t n, uint64_t seed) {
  auto gen = ZipfGenerator::Make(8000, 1.0, seed);
  EXPECT_TRUE(gen.ok());
  return gen->Take(n);
}

// ThreadSanitizer slows everything ~10x; shrink the streams there so the
// concurrent suite stays fast under scripts/check.sh's race sweep.
#if defined(__SANITIZE_THREAD__)
constexpr size_t kStreamItems = 60000;
#else
constexpr size_t kStreamItems = 200000;
#endif

TEST(ParallelIngestorTest, RejectsBadOptions) {
  IngestOptions opts;
  opts.threads = 0;
  EXPECT_TRUE(ParallelIngestor<CountSketch>::Make(
                  MakeSharedParamsFactory<CountSketch>(SketchParams()), opts)
                  .status()
                  .IsInvalidArgument());
  opts.threads = 2;
  opts.batch_items = 0;
  EXPECT_TRUE(ParallelIngestor<CountSketch>::Make(
                  MakeSharedParamsFactory<CountSketch>(SketchParams()), opts)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParallelIngestor<CountSketch>::Make({}, IngestOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelIngestorTest, CountSketchDeterministicAcrossThreadCounts) {
  const Stream stream = MakeZipfStream(kStreamItems, 21);
  auto sequential = CountSketch::Make(SketchParams());
  ASSERT_TRUE(sequential.ok());
  sequential->BatchAdd(std::span<const ItemId>(stream));

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    IngestOptions opts;
    opts.threads = threads;
    opts.batch_items = 4096;
    opts.publish_every_batches = 4;  // periodic folds must not change the sum
    auto merged = ParallelIngest<CountSketch>(
        std::span<const ItemId>(stream),
        MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();

    // Same seed => same hash functions => bit-identical counters, so every
    // estimate matches sequential ingestion exactly, at every thread count.
    for (size_t row = 0; row < sequential->depth(); ++row) {
      for (size_t col = 0; col < sequential->width(); ++col) {
        ASSERT_EQ(merged->CounterAt(row, col), sequential->CounterAt(row, col))
            << "threads=" << threads << " row=" << row << " col=" << col;
      }
    }
  }
}

TEST(ParallelIngestorTest, CountMinParallelMatchesSequential) {
  const Stream stream = MakeZipfStream(kStreamItems, 22);
  CountMinParams p;
  p.depth = 4;
  p.width = 1024;
  p.seed = 5;
  auto sequential = CountMin::Make(p);
  ASSERT_TRUE(sequential.ok());
  sequential->BatchAdd(std::span<const ItemId>(stream));

  IngestOptions opts;
  opts.threads = 4;
  opts.batch_items = 2048;
  opts.publish_every_batches = 8;
  auto merged = ParallelIngest<CountMin>(
      std::span<const ItemId>(stream),
      MakeSharedParamsFactory<CountMin>(p), opts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ExactCounter oracle;
  oracle.AddAll(stream);
  for (const ItemCount& ic : oracle.TopK(200)) {
    EXPECT_EQ(merged->Estimate(ic.item), sequential->Estimate(ic.item));
  }
}

TEST(ParallelIngestorTest, SpaceSavingParallelKeepsGuarantees) {
  const Stream stream = MakeZipfStream(kStreamItems, 23);
  constexpr size_t kCapacity = 512;
  IngestOptions opts;
  opts.threads = 4;
  opts.batch_items = 4096;  // publish_every_batches stays 0: final fold only
  auto merged = ParallelIngest<SpaceSaving>(
      std::span<const ItemId>(stream),
      MakeSharedParamsFactory<SpaceSaving>(kCapacity), opts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ExactCounter oracle;
  oracle.AddAll(stream);
  // Merged counts stay upper bounds on union counts (the Merge contract),
  // and the heavy head of a Zipf(1) stream must be monitored.
  std::set<ItemId> monitored;
  for (const ItemCount& ic : merged->Candidates(kCapacity)) {
    monitored.insert(ic.item);
  }
  for (const ItemCount& ic : oracle.TopK(20)) {
    EXPECT_GE(merged->Estimate(ic.item), ic.count) << "item " << ic.item;
    EXPECT_TRUE(monitored.count(ic.item)) << "item " << ic.item;
  }
}

TEST(ParallelIngestorTest, MisraGriesParallelKeepsGuarantees) {
  const Stream stream = MakeZipfStream(kStreamItems, 24);
  constexpr size_t kCapacity = 512;
  IngestOptions opts;
  opts.threads = 4;
  opts.batch_items = 4096;
  auto merged = ParallelIngest<MisraGries>(
      std::span<const ItemId>(stream),
      MakeSharedParamsFactory<MisraGries>(kCapacity), opts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ExactCounter oracle;
  oracle.AddAll(stream);
  const Count n = static_cast<Count>(stream.size());
  // The merged summary keeps the (n1 + ... + nP) / (c+1) error guarantee
  // over the union stream.
  const Count slack = n / static_cast<Count>(kCapacity + 1);
  for (const ItemCount& ic : oracle.TopK(20)) {
    EXPECT_LE(merged->Estimate(ic.item), ic.count);
    EXPECT_GE(merged->Estimate(ic.item), ic.count - slack)
        << "item " << ic.item;
  }
}

TEST(ParallelIngestorTest, SnapshotsReadableDuringIngestion) {
  const Stream stream = MakeZipfStream(kStreamItems, 25);
  // Ground-truth hottest item for sanity-checking concurrent reads.
  ExactCounter oracle;
  oracle.AddAll(stream);
  const ItemId hot = oracle.TopK(1)[0].item;

  IngestOptions opts;
  opts.threads = 4;
  opts.batch_items = 1024;
  opts.publish_every_batches = 2;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());

  // Never null, even before any data arrives.
  ASSERT_NE((*ingestor)->Snapshot(), nullptr);
  EXPECT_GE((*ingestor)->SnapshotEpoch(), 1u);

  // Readers hammer the snapshot while the producer feeds the stream.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const CountSketch* snap = (*ingestor)->Snapshot();
        // Estimates on a consistent snapshot are well-defined values; the
        // hot item's estimate can never exceed the whole stream length.
        const Count est = snap->Estimate(hot);
        ASSERT_LE(std::abs(est), static_cast<Count>(stream.size()));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());
  auto merged = (*ingestor)->Finish();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ((*ingestor)->ItemsIngested(), stream.size());

  // The final snapshot is the merged result.
  const CountSketch* final_snap = (*ingestor)->Snapshot();
  ASSERT_NE(final_snap, nullptr);
  for (size_t row = 0; row < merged->depth(); ++row) {
    for (size_t col = 0; col < merged->width(); col += 7) {
      ASSERT_EQ(final_snap->CounterAt(row, col), merged->CounterAt(row, col));
    }
  }
  // Periodic folds published intermediate epochs beyond the initial one.
  EXPECT_GT((*ingestor)->SnapshotEpoch(), 1u);
}

TEST(ParallelIngestorTest, IngestAfterFinishFails) {
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), IngestOptions{});
  ASSERT_TRUE(ingestor.ok());
  const Stream stream = MakeZipfStream(1000, 26);
  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());
  auto merged = (*ingestor)->Finish();
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE((*ingestor)
                  ->Ingest(std::span<const ItemId>(stream))
                  .IsInvalidArgument());
  // Finish is idempotent.
  EXPECT_TRUE((*ingestor)->Finish().ok());
}

TEST(ParallelIngestorTest, MultipleProducers) {
  const Stream stream = MakeZipfStream(kStreamItems, 27);
  auto sequential = CountSketch::Make(SketchParams());
  ASSERT_TRUE(sequential.ok());
  sequential->BatchAdd(std::span<const ItemId>(stream));

  IngestOptions opts;
  opts.threads = 2;
  opts.batch_items = 1024;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());

  // Four producer threads submit disjoint quarters concurrently.
  std::vector<std::thread> producers;
  const size_t quarter = stream.size() / 4;
  for (size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      const size_t begin = p * quarter;
      const size_t end = p == 3 ? stream.size() : begin + quarter;
      std::span<const ItemId> part(stream.data() + begin, end - begin);
      ASSERT_TRUE((*ingestor)->Ingest(part).ok());
    });
  }
  for (auto& t : producers) t.join();
  auto merged = (*ingestor)->Finish();
  ASSERT_TRUE(merged.ok());

  for (size_t row = 0; row < sequential->depth(); ++row) {
    for (size_t col = 0; col < sequential->width(); ++col) {
      ASSERT_EQ(merged->CounterAt(row, col), sequential->CounterAt(row, col));
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded modes (fault injection + overflow policies).

// Builds the multiset difference stream \ spill, in arbitrary order. For
// linear sketches, ingesting this sequentially must reproduce the degraded
// parallel result exactly (order never matters for the counter sums).
Stream EffectiveStream(const Stream& stream, const std::vector<ItemId>& spill) {
  std::map<ItemId, uint64_t> drop;
  for (const ItemId id : spill) ++drop[id];
  Stream effective;
  effective.reserve(stream.size() - spill.size());
  for (const ItemId id : stream) {
    auto it = drop.find(id);
    if (it != drop.end() && it->second > 0) {
      --it->second;
      continue;
    }
    effective.push_back(id);
  }
  return effective;
}

// The acceptance-criteria scenario: kill a worker mid-stream (three times),
// prove the in-flight batches are requeued and re-processed — the merged
// counters stay bit-identical to sequential ingestion — and the respawns
// show up in IngestStats.
TEST(ParallelIngestorTest, KillOneWorkerRecoversWithRequeue) {
  const Stream stream = MakeZipfStream(kStreamItems, 31);
  auto sequential = CountSketch::Make(SketchParams());
  ASSERT_TRUE(sequential.ok());
  sequential->BatchAdd(std::span<const ItemId>(stream));

  ScopedFailpoints fp("ingestor.worker_batch=crash*3", 17);
  ASSERT_TRUE(fp.status().ok());

  IngestOptions opts;
  opts.threads = 2;
  opts.batch_items = 2048;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());
  auto merged = (*ingestor)->Finish();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  const IngestStats stats = (*ingestor)->Stats();
  EXPECT_EQ(stats.worker_respawns, 3u);
  EXPECT_EQ(stats.items_ingested, stream.size());
  EXPECT_EQ(stats.DroppedItems(), 0u) << "crash recovery must not lose mass";
  for (size_t row = 0; row < sequential->depth(); ++row) {
    for (size_t col = 0; col < sequential->width(); ++col) {
      ASSERT_EQ(merged->CounterAt(row, col), sequential->CounterAt(row, col));
    }
  }
}

TEST(ParallelIngestorTest, ShedPolicyCountsAndRecordsDroppedMass) {
  const Stream stream = MakeZipfStream(10240, 32);

  // One worker that sleeps 40 ms per hand-off against 1 ms push deadlines:
  // most batches shed.
  ScopedFailpoints fp("batch_queue.pop=stall:40", 19);
  ASSERT_TRUE(fp.status().ok());

  IngestOptions opts;
  opts.threads = 1;
  opts.batch_items = 512;
  opts.queue_batches = 1;
  opts.push_timeout_ms = 1;
  opts.overflow_policy = OverflowPolicy::kShed;
  opts.record_shed = true;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());
  auto merged = (*ingestor)->Finish();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  const IngestStats stats = (*ingestor)->Stats();
  EXPECT_GT(stats.shed_batches, 0u);
  EXPECT_GT(stats.deadline_misses, 0u);
  // Conservation: everything offered was either ingested or accounted for.
  EXPECT_EQ(stats.items_ingested + stats.DroppedItems(), stream.size());

  // The recorded spill is the exact dropped mass, so the degraded sketch
  // equals sequential ingestion of the effective (surviving) stream.
  const std::vector<ItemId> spill = (*ingestor)->SpilledItems();
  EXPECT_EQ(spill.size(), stats.DroppedItems());
  auto effective = CountSketch::Make(SketchParams());
  ASSERT_TRUE(effective.ok());
  const Stream survivors = EffectiveStream(stream, spill);
  effective->BatchAdd(std::span<const ItemId>(survivors));
  for (size_t row = 0; row < effective->depth(); ++row) {
    for (size_t col = 0; col < effective->width(); ++col) {
      ASSERT_EQ(merged->CounterAt(row, col), effective->CounterAt(row, col));
    }
  }
}

TEST(ParallelIngestorTest, SamplePolicyDecimatesInsteadOfDropping) {
  const Stream stream = MakeZipfStream(8192, 33);
  ScopedFailpoints fp("batch_queue.pop=stall:40", 23);
  ASSERT_TRUE(fp.status().ok());

  IngestOptions opts;
  opts.threads = 1;
  opts.batch_items = 512;
  opts.queue_batches = 1;
  opts.push_timeout_ms = 1;
  opts.overflow_policy = OverflowPolicy::kSample;
  opts.sample_keep_one_in = 4;
  opts.record_shed = true;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());
  auto merged = (*ingestor)->Finish();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  const IngestStats stats = (*ingestor)->Stats();
  EXPECT_GT(stats.sampled_batches, 0u);
  EXPECT_GT(stats.sampled_items_dropped, 0u);
  EXPECT_EQ(stats.shed_batches, 0u) << "sampling keeps a sliver of each batch";
  EXPECT_EQ(stats.items_ingested + stats.DroppedItems(), stream.size());
  EXPECT_EQ((*ingestor)->SpilledItems().size(), stats.DroppedItems());
}

TEST(ParallelIngestorTest, BlockPolicyDeadlineMissFailsLoudly) {
  const Stream stream = MakeZipfStream(4096, 34);
  ScopedFailpoints fp("batch_queue.pop=stall:200", 29);
  ASSERT_TRUE(fp.status().ok());

  IngestOptions opts;
  opts.threads = 1;
  opts.batch_items = 256;
  opts.queue_batches = 1;
  opts.push_timeout_ms = 5;  // policy stays kBlock: misses are errors
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());
  const Status s = (*ingestor)->Ingest(std::span<const ItemId>(stream));
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_GT((*ingestor)->Stats().deadline_misses, 0u);
}

TEST(ParallelIngestorTest, DrainTimeoutAbandonsBacklogInsteadOfHanging) {
  const Stream stream = MakeZipfStream(20 * 128, 35);
  // Worker needs 30 ms per batch => ~600 ms to drain 20 queued batches; the
  // 60 ms drain deadline abandons most of them.
  ScopedFailpoints fp("ingestor.worker_batch=stall:30", 37);
  ASSERT_TRUE(fp.status().ok());

  IngestOptions opts;
  opts.threads = 1;
  opts.batch_items = 128;
  opts.queue_batches = 64;
  opts.drain_timeout_ms = 60;
  opts.record_shed = true;
  auto ingestor = ParallelIngestor<CountSketch>::Make(
      MakeSharedParamsFactory<CountSketch>(SketchParams()), opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Ingest(std::span<const ItemId>(stream)).ok());

  const auto start = std::chrono::steady_clock::now();
  auto merged = (*ingestor)->Finish();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_LT(elapsed, std::chrono::milliseconds(5000));

  const IngestStats stats = (*ingestor)->Stats();
  EXPECT_GT(stats.abandoned_batches, 0u);
  EXPECT_EQ(stats.items_ingested + stats.DroppedItems(), stream.size());
  EXPECT_EQ((*ingestor)->SpilledItems().size(), stats.DroppedItems());
}

}  // namespace
}  // namespace streamfreq
