#include "hash/pairwise.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace streamfreq {
namespace {

TEST(ModMersenne61Test, MatchesNaiveModulo) {
  const uint64_t p = kMersenne61;
  const uint128_t cases[] = {
      0,
      1,
      p - 1,
      p,
      p + 1,
      static_cast<uint128_t>(p) * 3 + 7,
      (static_cast<uint128_t>(1) << 122) + 12345,
      static_cast<uint128_t>(p - 1) * (p - 1),
  };
  for (uint128_t v : cases) {
    EXPECT_EQ(ModMersenne61(v), static_cast<uint64_t>(v % p));
  }
}

TEST(CarterWegmanTest, DeterministicGivenParams) {
  SplitMix64 seeder(42);
  CarterWegmanHash h(seeder);
  CarterWegmanHash h2 = CarterWegmanHash::FromParams(h.a(), h.b());
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(h.Eval(x), h2.Eval(x));
    EXPECT_EQ(h.Bucket(x, 64), h2.Bucket(x, 64));
    EXPECT_EQ(h.Sign(x), h2.Sign(x));
  }
}

TEST(CarterWegmanTest, EvalMatchesAffineFormula) {
  CarterWegmanHash h = CarterWegmanHash::FromParams(12345, 6789);
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{999999},
                     uint64_t{kMersenne61 - 1}}) {
    const uint128_t expect =
        (static_cast<uint128_t>(12345) * x + 6789) % kMersenne61;
    EXPECT_EQ(h.Eval(x), static_cast<uint64_t>(expect));
  }
}

TEST(CarterWegmanTest, BucketsWithinRange) {
  SplitMix64 seeder(7);
  CarterWegmanHash h(seeder);
  for (uint64_t range : {1ull, 2ull, 3ull, 100ull, 4096ull}) {
    for (uint64_t x = 0; x < 500; ++x) {
      EXPECT_LT(h.Bucket(x, range), range);
    }
  }
}

TEST(CarterWegmanTest, BucketsRoughlyUniform) {
  SplitMix64 seeder(11);
  CarterWegmanHash h(seeder);
  constexpr uint64_t kRange = 16;
  constexpr int kKeys = 64000;
  int counts[kRange] = {};
  for (int x = 0; x < kKeys; ++x) ++counts[h.Bucket(static_cast<uint64_t>(x), kRange)];
  const double expected = static_cast<double>(kKeys) / kRange;
  for (uint64_t b = 0; b < kRange; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.15) << "bucket " << b;
  }
}

TEST(CarterWegmanTest, SignsNearlyBalanced) {
  SplitMix64 seeder(13);
  CarterWegmanHash h(seeder);
  int64_t sum = 0;
  constexpr int kKeys = 100000;
  for (int x = 0; x < kKeys; ++x) {
    const int64_t s = h.Sign(static_cast<uint64_t>(x));
    ASSERT_TRUE(s == 1 || s == -1);
    sum += s;
  }
  // Balanced signs: |sum| ~ O(sqrt(n)) ~ 316; allow 6 sigma.
  EXPECT_LT(std::abs(sum), 2000);
}

TEST(CarterWegmanTest, PairwiseSignProductsAreBalanced) {
  // Pairwise independence: for fixed x != y, E[s(x) * s(y)] = 0 over the
  // random choice of the function. Sample many functions.
  SplitMix64 seeder(17);
  int64_t sum = 0;
  constexpr int kFunctions = 20000;
  for (int i = 0; i < kFunctions; ++i) {
    CarterWegmanHash h(seeder);
    sum += h.Sign(123) * h.Sign(456);
  }
  EXPECT_LT(std::abs(sum), 900);  // ~6 sigma for 20k +/-1 trials
}

TEST(CarterWegmanTest, BucketCollisionsNearExpectation) {
  // Pairwise independence: Pr[h(x) = h(y)] ~ 1/range over random functions.
  SplitMix64 seeder(19);
  constexpr uint64_t kRange = 32;
  constexpr int kFunctions = 30000;
  int collisions = 0;
  for (int i = 0; i < kFunctions; ++i) {
    CarterWegmanHash h(seeder);
    if (h.Bucket(777, kRange) == h.Bucket(888, kRange)) ++collisions;
  }
  const double expected = static_cast<double>(kFunctions) / kRange;
  EXPECT_NEAR(collisions, expected, 6.5 * std::sqrt(expected));
}

TEST(MultiplyShiftTest, DeterministicAndInRange) {
  SplitMix64 seeder(23);
  MultiplyShiftHash h(seeder);
  MultiplyShiftHash h2 = MultiplyShiftHash::FromParams(h.a(), h.b());
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(h.Bucket(x, 100), h2.Bucket(x, 100));
    EXPECT_LT(h.Bucket(x, 100), 100u);
    const int64_t s = h.Sign(x);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(MultiplyShiftTest, MultiplierForcedOdd) {
  SplitMix64 seeder(29);
  for (int i = 0; i < 100; ++i) {
    MultiplyShiftHash h(seeder);
    EXPECT_EQ(h.a() & 1, 1u);
  }
}

TEST(TabulationTest, DeterministicAndInRange) {
  SplitMix64 s1(31), s2(31);
  TabulationHash a(s1), b(s2);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(a.Eval(x), b.Eval(x));
    EXPECT_LT(a.Bucket(x, 37), 37u);
  }
}

TEST(TabulationTest, SingleByteChangeAvalanches) {
  SplitMix64 seeder(37);
  TabulationHash h(seeder);
  // Flipping one input byte XORs a full random table entry into the hash;
  // outputs should differ for every such flip.
  const uint64_t base = h.Eval(0x1122334455667788ULL);
  for (int byte = 0; byte < 8; ++byte) {
    const uint64_t flipped = 0x1122334455667788ULL ^ (0xFFULL << (8 * byte));
    EXPECT_NE(h.Eval(flipped), base) << "byte " << byte;
  }
}

TEST(TabulationTest, SignsNearlyBalanced) {
  SplitMix64 seeder(41);
  TabulationHash h(seeder);
  int64_t sum = 0;
  for (uint64_t x = 0; x < 100000; ++x) sum += h.Sign(x);
  EXPECT_LT(std::abs(sum), 2000);
}

}  // namespace
}  // namespace streamfreq
