#include "util/bit_util.h"

#include <gtest/gtest.h>

namespace streamfreq {
namespace bit_util {
namespace {

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(BitUtilTest, FloorCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(BitUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 3), 1u);
  EXPECT_EQ(CeilDiv(3, 3), 1u);
  EXPECT_EQ(CeilDiv(4, 3), 2u);
}

TEST(BitUtilTest, FastRangeStaysInRange) {
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    EXPECT_EQ(FastRange64(0, n), 0u);
    EXPECT_LT(FastRange64(~0ULL, n), n);
    EXPECT_LT(FastRange64(0x123456789ABCDEFULL << 4, n), n);
  }
}

TEST(BitUtilTest, FastRangeUsesHighBits) {
  // Values in the top half of the hash space map to the top half of the
  // range (the property the sketches rely on after the << 3 spread).
  EXPECT_GE(FastRange64(1ULL << 63, 100), 50u);
  EXPECT_LT(FastRange64(1ULL << 62, 100), 50u);
}

TEST(BitUtilTest, RotateLeft) {
  EXPECT_EQ(RotateLeft(1, 1), 2u);
  EXPECT_EQ(RotateLeft(1ULL << 63, 1), 1u);
}

}  // namespace
}  // namespace bit_util
}  // namespace streamfreq
