#include "core/group_testing.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/random.h"

namespace streamfreq {
namespace {

GroupTestingParams SmallParams() {
  GroupTestingParams p;
  p.depth = 3;
  p.groups = 512;
  p.key_bits = 20;
  p.seed = 7;
  return p;
}

TEST(GroupTestingTest, RejectsBadParams) {
  GroupTestingParams p = SmallParams();
  p.depth = 0;
  EXPECT_TRUE(GroupTestingSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.key_bits = 0;
  EXPECT_TRUE(GroupTestingSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.key_bits = 65;
  EXPECT_TRUE(GroupTestingSketch::Make(p).status().IsInvalidArgument());
}

TEST(GroupTestingTest, DecodesSingleHeavyKey) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  g->Add(0xABCDE, 100);
  const auto hits = g->Decode(50);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, 0xABCDEu);
  EXPECT_EQ(hits[0].estimate, 100);
}

TEST(GroupTestingTest, DecodesKeyZeroAndMaxKey) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  g->Add(0, 100);
  g->Add((1u << 20) - 1, 200);
  const auto hits = g->Decode(50);
  std::unordered_set<uint64_t> found;
  for (const auto& h : hits) found.insert(h.key);
  EXPECT_TRUE(found.count(0));
  EXPECT_TRUE(found.count((1u << 20) - 1));
}

TEST(GroupTestingTest, DecodesManyHeavyKeysAmongNoise) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  Xoshiro256 rng(3);
  for (int i = 0; i < 30000; ++i) g->Add(rng.UniformBelow(1u << 20));
  const uint64_t heavy[] = {17, 99999, 123456, 777777, 1000000};
  for (uint64_t k : heavy) g->Add(k, 1500);

  const auto hits = g->Decode(800);
  std::unordered_set<uint64_t> found;
  for (const auto& h : hits) found.insert(h.key);
  for (uint64_t k : heavy) {
    EXPECT_TRUE(found.count(k)) << "missed heavy key " << k;
  }
  // Decoded keys are majority-verified: no garbage below threshold.
  for (const auto& h : hits) EXPECT_GE(h.estimate, 800);
}

TEST(GroupTestingTest, EstimateIsUpperBoundOnInsertOnlyStream) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  Xoshiro256 rng(5);
  std::unordered_map<uint64_t, Count> truth;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.UniformBelow(1u << 20);
    g->Add(k);
    ++truth[k];
  }
  int checked = 0;
  for (const auto& [k, c] : truth) {
    ASSERT_GE(g->Estimate(k), c);
    if (++checked == 2000) break;
  }
}

TEST(GroupTestingTest, TurnstileDeleteRemovesKeyFromDecode) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  g->Add(555, 100);
  g->Add(777, 100);
  g->Add(555, -100);  // full deletion
  const auto hits = g->Decode(50);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, 777u);
}

TEST(GroupTestingTest, SubtractFindsChangedKey) {
  auto a = GroupTestingSketch::Make(SmallParams());
  auto b = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.UniformBelow(1u << 20);
    a->Add(k);
    b->Add(k);
  }
  b->Add(424242, 900);  // only the riser differs
  ASSERT_TRUE(b->Subtract(*a).ok());
  const auto hits = b->Decode(500);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, 424242u);
}

TEST(GroupTestingTest, MergeMatchesUnion) {
  auto a = GroupTestingSketch::Make(SmallParams());
  auto b = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  a->Add(99, 60);
  b->Add(99, 50);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Estimate(99), 110);
}

TEST(GroupTestingTest, IncompatibleMergeRejected) {
  auto a = GroupTestingSketch::Make(SmallParams());
  GroupTestingParams p = SmallParams();
  p.seed = 8;
  auto b = GroupTestingSketch::Make(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
  EXPECT_TRUE(a->Subtract(*b).IsInvalidArgument());
}

TEST(GroupTestingTest, SpaceAccountsBitCounters) {
  auto g = GroupTestingSketch::Make(SmallParams());
  ASSERT_TRUE(g.ok());
  // 3 rows * 512 groups * (1 + 20) counters * 8 bytes.
  EXPECT_GE(g->SpaceBytes(), 3u * 512u * 21u * 8u);
}

}  // namespace
}  // namespace streamfreq
