#include "stream/adversarial.h"

#include <gtest/gtest.h>

#include "stream/exact_counter.h"

namespace streamfreq {
namespace {

TEST(AdversarialTest, RejectsBadSpecs) {
  AdversarialSpec spec;
  spec.k = 0;
  EXPECT_TRUE(MakeAdversarialStream(spec).status().IsInvalidArgument());

  spec = AdversarialSpec{};
  spec.gap = 0;
  EXPECT_TRUE(MakeAdversarialStream(spec).status().IsInvalidArgument());

  spec = AdversarialSpec{};
  spec.gap = spec.head_count;
  EXPECT_TRUE(MakeAdversarialStream(spec).status().IsInvalidArgument());

  spec = AdversarialSpec{};
  spec.tail_count = spec.head_count;  // tail as heavy as shadows
  EXPECT_TRUE(MakeAdversarialStream(spec).status().IsInvalidArgument());
}

TEST(AdversarialTest, CountsMatchSpec) {
  AdversarialSpec spec;
  spec.k = 3;
  spec.shadows = 5;
  spec.head_count = 100;
  spec.gap = 1;
  spec.tail_items = 50;
  spec.tail_count = 2;
  auto stream = MakeAdversarialStream(spec);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 3 * 100 + 5 * 99 + 50 * 2u);

  ExactCounter oracle;
  oracle.AddAll(*stream);
  for (uint64_t i = 0; i < spec.k; ++i) {
    EXPECT_EQ(oracle.CountOf(kHeadBase + i), 100);
  }
  for (uint64_t j = 0; j < spec.shadows; ++j) {
    EXPECT_EQ(oracle.CountOf(kShadowBase + j), 99);
  }
  for (uint64_t t = 0; t < spec.tail_items; ++t) {
    EXPECT_EQ(oracle.CountOf(kTailBase + t), 2);
  }
}

TEST(AdversarialTest, BoundaryGapIsExactlyGap) {
  AdversarialSpec spec;
  spec.k = 2;
  spec.shadows = 2;
  spec.head_count = 500;
  spec.gap = 3;
  auto stream = MakeAdversarialStream(spec);
  ASSERT_TRUE(stream.ok());
  ExactCounter oracle;
  oracle.AddAll(*stream);
  EXPECT_EQ(oracle.NthCount(spec.k) - oracle.NthCount(spec.k + 1), 3);
}

TEST(AdversarialTest, ShuffleIsDeterministicPerSeed) {
  AdversarialSpec spec;
  spec.seed = 99;
  auto a = MakeAdversarialStream(spec);
  auto b = MakeAdversarialStream(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  spec.seed = 100;
  auto c = MakeAdversarialStream(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST(AdversarialTest, StreamIsShuffled) {
  AdversarialSpec spec;
  spec.k = 1;
  spec.shadows = 1;
  spec.head_count = 1000;
  spec.tail_items = 0;
  auto stream = MakeAdversarialStream(spec);
  ASSERT_TRUE(stream.ok());
  // A shuffled stream should not be the two solid runs construction order
  // produces: the head item must appear in the second half somewhere.
  bool head_in_second_half = false;
  for (size_t i = stream->size() / 2; i < stream->size(); ++i) {
    if ((*stream)[i] == kHeadBase) head_in_second_half = true;
  }
  EXPECT_TRUE(head_in_second_half);
}

}  // namespace
}  // namespace streamfreq
