#include "core/exact_topk.h"

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "eval/workload.h"

namespace streamfreq {
namespace {

TEST(ExactTopKTest, PerfectScoresOnAnyWorkload) {
  auto workload = MakeZipfWorkload(2000, 1.0, 30000, 3);
  ASSERT_TRUE(workload.ok());
  ExactTopK exact;
  const RunResult r = RunAndScore(exact, *workload, 10);
  EXPECT_DOUBLE_EQ(r.topk_quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.topk_quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.are_topk, 0.0);
}

TEST(ExactTopKTest, SpaceGrowsWithDistinctItems) {
  ExactTopK exact;
  exact.Add(1, 100);
  const size_t one = exact.SpaceBytes();
  for (ItemId q = 2; q <= 1000; ++q) exact.Add(q);
  EXPECT_GT(exact.SpaceBytes(), 500 * one)
      << "the baseline pays per distinct item -- the paper's point";
}

TEST(ExactTopKTest, TurnstileCountsExactly) {
  ExactTopK exact;
  exact.Add(5, 10);
  exact.Add(5, -3);
  EXPECT_EQ(exact.Estimate(5), 7);
  EXPECT_EQ(exact.Estimate(6), 0);
}

TEST(ExactTopKTest, CandidatesAreTrueTopK) {
  ExactTopK exact;
  exact.Add(1, 5);
  exact.Add(2, 15);
  exact.Add(3, 10);
  const auto top2 = exact.Candidates(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].item, 2u);
  EXPECT_EQ(top2[1].item, 3u);
}

}  // namespace
}  // namespace streamfreq
