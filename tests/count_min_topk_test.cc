#include "core/count_min_topk.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

CountMinParams DefaultSketch() {
  CountMinParams p;
  p.depth = 4;
  p.width = 2048;
  p.seed = 9;
  return p;
}

TEST(CountMinTopKTest, RejectsBadInputs) {
  EXPECT_TRUE(CountMinTopK::Make(DefaultSketch(), 0).status().IsInvalidArgument());
  CountMinParams p = DefaultSketch();
  p.width = 0;
  EXPECT_TRUE(CountMinTopK::Make(p, 5).status().IsInvalidArgument());
}

TEST(CountMinTopKTest, FindsTrueTopKOnSkewedStream) {
  auto gen = ZipfGenerator::Make(10000, 1.1, 31);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(150000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  constexpr size_t kK = 20;
  auto algo = CountMinTopK::Make(DefaultSketch(), 2 * kK);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(stream);

  std::unordered_set<ItemId> candidates;
  for (const ItemCount& ic : algo->Candidates(2 * kK)) candidates.insert(ic.item);
  size_t found = 0;
  for (const ItemCount& ic : oracle.TopK(kK)) found += candidates.count(ic.item);
  EXPECT_GE(found, kK - 1);
}

TEST(CountMinTopKTest, ConservativeVariantNameDiffers) {
  auto plain = CountMinTopK::Make(DefaultSketch(), 5);
  CountMinParams p = DefaultSketch();
  p.conservative = true;
  auto cu = CountMinTopK::Make(p, 5);
  ASSERT_TRUE(plain.ok() && cu.ok());
  EXPECT_NE(plain->Name(), cu->Name());
  EXPECT_NE(cu->Name().find("CU"), std::string::npos);
}

TEST(CountMinTopKTest, EstimatePrefersTrackedCount) {
  auto algo = CountMinTopK::Make(DefaultSketch(), 3);
  ASSERT_TRUE(algo.ok());
  for (int i = 0; i < 50; ++i) algo->Add(1);
  EXPECT_EQ(algo->Estimate(1), 50);
}

TEST(CountMinTopKTest, CandidatesBoundedByCapacity) {
  auto algo = CountMinTopK::Make(DefaultSketch(), 5);
  ASSERT_TRUE(algo.ok());
  for (ItemId q = 1; q <= 100; ++q) algo->Add(q, static_cast<Count>(q));
  EXPECT_LE(algo->Candidates(100).size(), 5u);
}

TEST(CountMinTopKTest, SpaceIncludesSketch) {
  auto algo = CountMinTopK::Make(DefaultSketch(), 5);
  ASSERT_TRUE(algo.ok());
  EXPECT_GE(algo->SpaceBytes(), algo->sketch().SpaceBytes());
}

}  // namespace
}  // namespace streamfreq
