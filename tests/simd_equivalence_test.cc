// Bit-identity of the SIMD batch-hash path against the scalar reference.
//
// The vectorized kernels in hash/batch_hash.cc claim to mirror the scalar
// hash arithmetic operation for operation (exact unsigned lane math), so
// the sketches' BatchAdd must produce counter tables EQUAL — not close —
// to the item-at-a-time Add loop and to BatchAddScalar. These tests assert
// exactly that, at three levels:
//
//   1. kernel level: Buckets / BucketsAndSigns, scalar vs vectorized
//      backend, over random and adversarial keys;
//   2. sketch level: CountSketch / CountMin counter tables after identical
//      seeded streams through Add, BatchAddScalar, and BatchAdd;
//   3. estimate level: every probed estimate identical across paths.
//
// Widths are deliberately mixed: powers of two (stride == width, zero
// padding) and odd widths (padded rows) both must agree, and batch sizes
// straddle the kernel block boundaries (kBlock = 16, kLanes = 8) so the
// vector body, single-bundle loop, and scalar tail all get exercised.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/count_min.h"
#include "core/count_sketch.h"
#include "hash/batch_hash.h"
#include "hash/pairwise.h"
#include "hash/random.h"

namespace streamfreq {
namespace {

// Keys that stress every branch of the Carter-Wegman lane math: the
// pre-fold boundary at p = 2^61 - 1, the +b carry, and full-width keys.
std::vector<uint64_t> AdversarialKeys() {
  return {0,
          1,
          2,
          kMersenne61 - 1,
          kMersenne61,
          kMersenne61 + 1,
          (1ULL << 61),
          (1ULL << 62) + 12345,
          UINT64_MAX - 1,
          UINT64_MAX};
}

std::vector<uint64_t> RandomKeys(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

// Batch sizes around the block (16) and bundle (8) boundaries, plus a
// large batch, so every loop shape in the kernels runs.
const size_t kBatchSizes[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 33, 1000};

template <typename HashT>
void ExpectKernelEquivalence(uint64_t seed, uint64_t range) {
  SplitMix64 seeder(seed);
  const HashT hb(seeder);
  const HashT hs(seeder);
  for (size_t n : kBatchSizes) {
    std::vector<uint64_t> keys = RandomKeys(n, seed ^ n);
    const auto adversarial = AdversarialKeys();
    keys.insert(keys.end(), adversarial.begin(), adversarial.end());

    std::vector<uint64_t> b_scalar(keys.size()), b_simd(keys.size());
    std::vector<int64_t> s_scalar(keys.size()), s_simd(keys.size());
    batch_hash::Buckets(hb, keys, range, b_scalar.data(),
                        batch_hash::Backend::kScalar);
    batch_hash::Buckets(hb, keys, range, b_simd.data(),
                        batch_hash::Backend::kVectorized);
    EXPECT_EQ(b_scalar, b_simd) << "Buckets diverge, n=" << keys.size();

    batch_hash::BucketsAndSigns(hb, hs, keys, range, b_scalar.data(),
                                s_scalar.data(),
                                batch_hash::Backend::kScalar);
    batch_hash::BucketsAndSigns(hb, hs, keys, range, b_simd.data(),
                                s_simd.data(),
                                batch_hash::Backend::kVectorized);
    EXPECT_EQ(b_scalar, b_simd) << "fused buckets diverge, n=" << keys.size();
    EXPECT_EQ(s_scalar, s_simd) << "signs diverge, n=" << keys.size();

    // The kernels must also match the hash class's own evaluation — the
    // reference semantics both backends claim to implement.
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(b_scalar[i], hb.Bucket(keys[i], range)) << "key " << keys[i];
      ASSERT_EQ(s_scalar[i], hs.Sign(keys[i])) << "key " << keys[i];
    }
  }
}

TEST(SimdKernelTest, CarterWegmanPowerOfTwoRange) {
  ExpectKernelEquivalence<CarterWegmanHash>(0xA11CE, 1024);
}

TEST(SimdKernelTest, CarterWegmanOddRange) {
  ExpectKernelEquivalence<CarterWegmanHash>(0xB0B, 997);
}

TEST(SimdKernelTest, MultiplyShiftPowerOfTwoRange) {
  ExpectKernelEquivalence<MultiplyShiftHash>(0xC4A7, 4096);
}

TEST(SimdKernelTest, MultiplyShiftOddRange) {
  ExpectKernelEquivalence<MultiplyShiftHash>(0xD06, 123);
}

TEST(SimdKernelTest, TabulationFallsBackToScalar) {
  ExpectKernelEquivalence<TabulationHash>(0xE99, 512);
}

TEST(SimdKernelTest, BackendNameIsNonEmpty) {
  ASSERT_NE(batch_hash::BackendName(), nullptr);
  EXPECT_GT(std::string_view(batch_hash::BackendName()).size(), 0u);
}

// -- sketch level ----------------------------------------------------------

std::vector<ItemId> TestStream(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<ItemId> items(n);
  for (auto& q : items) {
    // Mix of a small hot set (collisions) and full-range cold keys.
    q = (rng.Next() & 1) ? rng.Next() % 50 : rng.Next();
  }
  const auto adversarial = AdversarialKeys();
  items.insert(items.end(), adversarial.begin(), adversarial.end());
  return items;
}

void ExpectCountSketchEquivalence(CountSketchParams p) {
  auto add = CountSketch::Make(p);
  auto batch_scalar = CountSketch::Make(p);
  auto batch_simd = CountSketch::Make(p);
  ASSERT_TRUE(add.ok() && batch_scalar.ok() && batch_simd.ok());

  const std::vector<ItemId> items = TestStream(3000, p.seed ^ 0x5EED);
  for (ItemId q : items) add->Add(q, 3);
  batch_scalar->BatchAddScalar(items, 3);
  batch_simd->BatchAdd(items, 3);

  // Counter-table equality on every logical cell — bit identity, not
  // estimate-level closeness.
  for (size_t i = 0; i < p.depth; ++i) {
    for (size_t j = 0; j < p.width; ++j) {
      ASSERT_EQ(add->CounterAt(i, j), batch_scalar->CounterAt(i, j))
          << "scalar batch diverges from Add at (" << i << "," << j << ")";
      ASSERT_EQ(add->CounterAt(i, j), batch_simd->CounterAt(i, j))
          << "SIMD batch diverges from Add at (" << i << "," << j << ")";
    }
  }
  for (ItemId q : items) {
    ASSERT_EQ(add->Estimate(q), batch_simd->Estimate(q)) << "item " << q;
  }
}

TEST(SimdSketchEquivalenceTest, CountSketchCarterWegman) {
  CountSketchParams p;
  p.depth = 5;
  p.width = 256;
  p.seed = 7;
  p.family = HashFamily::kCarterWegman;
  ExpectCountSketchEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountSketchCarterWegmanOddWidth) {
  // Odd width: padded CounterMatrix rows AND the FastRange tail both in
  // play.
  CountSketchParams p;
  p.depth = 3;
  p.width = 101;
  p.seed = 11;
  p.family = HashFamily::kCarterWegman;
  ExpectCountSketchEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountSketchMultiplyShift) {
  CountSketchParams p;
  p.depth = 4;
  p.width = 512;
  p.seed = 13;
  p.family = HashFamily::kMultiplyShift;
  ExpectCountSketchEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountSketchMultiplyShiftOddWidth) {
  CountSketchParams p;
  p.depth = 7;
  p.width = 33;
  p.seed = 17;
  p.family = HashFamily::kMultiplyShift;
  ExpectCountSketchEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountSketchTabulation) {
  CountSketchParams p;
  p.depth = 5;
  p.width = 128;
  p.seed = 19;
  p.family = HashFamily::kTabulation;
  ExpectCountSketchEquivalence(p);
}

void ExpectCountMinEquivalence(CountMinParams p) {
  auto add = CountMin::Make(p);
  auto batch_scalar = CountMin::Make(p);
  auto batch_simd = CountMin::Make(p);
  ASSERT_TRUE(add.ok() && batch_scalar.ok() && batch_simd.ok());

  const std::vector<ItemId> items = TestStream(3000, p.seed ^ 0xF00D);
  for (ItemId q : items) add->Add(q, 2);
  batch_scalar->BatchAddScalar(items, 2);
  batch_simd->BatchAdd(items, 2);

  for (ItemId q : items) {
    ASSERT_EQ(add->Estimate(q), batch_scalar->Estimate(q)) << "item " << q;
    ASSERT_EQ(add->Estimate(q), batch_simd->Estimate(q)) << "item " << q;
  }
}

TEST(SimdSketchEquivalenceTest, CountMin) {
  CountMinParams p;
  p.depth = 4;
  p.width = 256;
  p.seed = 23;
  ExpectCountMinEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountMinOddWidth) {
  CountMinParams p;
  p.depth = 5;
  p.width = 77;
  p.seed = 29;
  ExpectCountMinEquivalence(p);
}

TEST(SimdSketchEquivalenceTest, CountMinConservativeFallback) {
  // Conservative update is order-dependent; BatchAdd must match per-item
  // Add in stream order exactly (it falls back to that loop).
  CountMinParams p;
  p.depth = 4;
  p.width = 128;
  p.seed = 31;
  p.conservative = true;
  ExpectCountMinEquivalence(p);
}

// Merge after batched ingest: the padded-buffer AddAll must agree with
// merging sketches built by scalar Add (padding stays zero).
TEST(SimdSketchEquivalenceTest, MergeAfterBatchedIngestOddWidth) {
  CountSketchParams p;
  p.depth = 3;
  p.width = 55;
  p.seed = 37;
  auto a_simd = CountSketch::Make(p);
  auto b_simd = CountSketch::Make(p);
  auto a_ref = CountSketch::Make(p);
  auto b_ref = CountSketch::Make(p);
  ASSERT_TRUE(a_simd.ok() && b_simd.ok() && a_ref.ok() && b_ref.ok());

  const auto s1 = TestStream(500, 0x111);
  const auto s2 = TestStream(500, 0x222);
  a_simd->BatchAdd(s1);
  b_simd->BatchAdd(s2);
  for (ItemId q : s1) a_ref->Add(q);
  for (ItemId q : s2) b_ref->Add(q);

  ASSERT_TRUE(a_simd->Merge(*b_simd).ok());
  ASSERT_TRUE(a_ref->Merge(*b_ref).ok());
  for (size_t i = 0; i < p.depth; ++i) {
    for (size_t j = 0; j < p.width; ++j) {
      ASSERT_EQ(a_simd->CounterAt(i, j), a_ref->CounterAt(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

// Serialization round-trip through the padded layout: wire format is the
// logical row-major order, so deserialized counters must match cell for
// cell.
TEST(SimdSketchEquivalenceTest, SerializeRoundTripOddWidth) {
  CountSketchParams p;
  p.depth = 4;
  p.width = 99;
  p.seed = 41;
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  s->BatchAdd(TestStream(800, 0x333));

  std::string blob;
  s->SerializeTo(&blob);
  auto back = CountSketch::Deserialize(blob);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < p.depth; ++i) {
    for (size_t j = 0; j < p.width; ++j) {
      ASSERT_EQ(s->CounterAt(i, j), back->CounterAt(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace streamfreq
