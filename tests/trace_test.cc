#include "stream/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace streamfreq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceTest, RoundTrip) {
  const std::string path = TempPath("sfq_trace_roundtrip.bin");
  const Stream original = {1, 2, 3, ~0ULL, 0, 42};
  ASSERT_TRUE(WriteTrace(path, original).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, original);
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyStreamRoundTrips) {
  const std::string path = TempPath("sfq_trace_empty.bin");
  ASSERT_TRUE(WriteTrace(path, {}).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadTrace(TempPath("does_not_exist.bin")).status().IsIoError());
}

TEST(TraceTest, BadMagicIsCorruption) {
  const std::string path = TempPath("sfq_trace_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "NOTMAGIC________________";
  EXPECT_TRUE(ReadTrace(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedPayloadIsCorruption) {
  const std::string path = TempPath("sfq_trace_trunc.bin");
  ASSERT_TRUE(WriteTrace(path, {1, 2, 3, 4}).ok());
  // Chop off the last 8 bytes.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string data(size, '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data.data(), static_cast<std::streamsize>(size - 8));
  EXPECT_TRUE(ReadTrace(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedHeaderIsCorruption) {
  const std::string path = TempPath("sfq_trace_hdr.bin");
  std::ofstream(path, std::ios::binary) << "SFQTRC01";  // magic, no length
  EXPECT_TRUE(ReadTrace(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceTest, OverwriteReplacesContent) {
  const std::string path = TempPath("sfq_trace_overwrite.bin");
  ASSERT_TRUE(WriteTrace(path, {1, 2, 3}).ok());
  ASSERT_TRUE(WriteTrace(path, {9}).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, Stream({9}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamfreq
