// Compile-FAILURE probe: both statements below discard a [[nodiscard]]
// type, so this file must NOT compile under -Werror=unused-result. The
// nodiscard_probe_test driver asserts the failure (and that the sibling
// use_status.cc still compiles, proving the error is the attribute and not
// a broken include path). Syntax-only: the functions are never defined.
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

Status MakeStatus();
Result<int> MakeResult();

void DropBoth() {
  MakeStatus();  // NOLINT(sfq-dropped-status): the probe's entire point
  MakeResult();
}

}  // namespace streamfreq
