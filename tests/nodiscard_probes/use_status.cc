// Compile-SUCCESS control for drop_status.cc: consuming the Status and the
// Result must compile clean with the same flags, so the probe's failure is
// attributable to [[nodiscard]] alone.
#include "util/result.h"
#include "util/status.h"

namespace streamfreq {

Status MakeStatus();
Result<int> MakeResult();

int UseBoth() {
  const Status s = MakeStatus();
  const Result<int> r = MakeResult();
  if (!s.ok() || !r.ok()) return 1;
  (void)MakeStatus();  // explicit discard is the sanctioned escape hatch
  return 0;
}

}  // namespace streamfreq
