#include "stream/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

namespace streamfreq {
namespace {

TEST(ZipfGeneratorTest, RejectsBadParameters) {
  EXPECT_TRUE(ZipfGenerator::Make(0, 1.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(ZipfGenerator::Make(10, -0.5, 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      ZipfGenerator::Make(10, std::nan(""), 1).status().IsInvalidArgument());
  // Universe cap: a mistyped 10^12 must fail cleanly, not exhaust memory.
  EXPECT_TRUE(ZipfGenerator::Make(1ull << 40, 1.0, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(ZipfGeneratorTest, ProbabilitiesSumToOne) {
  auto gen = ZipfGenerator::Make(1000, 1.0, 1);
  ASSERT_TRUE(gen.ok());
  double total = 0.0;
  for (uint64_t q = 1; q <= 1000; ++q) total += gen->ProbabilityOfRank(q);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfGeneratorTest, ProbabilityFollowsPowerLaw) {
  auto gen = ZipfGenerator::Make(1000, 1.5, 1);
  ASSERT_TRUE(gen.ok());
  // p(q) / p(2q) = 2^z for the pure power law.
  EXPECT_NEAR(gen->ProbabilityOfRank(1) / gen->ProbabilityOfRank(2),
              std::pow(2.0, 1.5), 1e-9);
  EXPECT_NEAR(gen->ProbabilityOfRank(10) / gen->ProbabilityOfRank(20),
              std::pow(2.0, 1.5), 1e-9);
}

TEST(ZipfGeneratorTest, ZeroSkewIsUniform) {
  auto gen = ZipfGenerator::Make(100, 0.0, 1);
  ASSERT_TRUE(gen.ok());
  for (uint64_t q = 1; q <= 100; ++q) {
    EXPECT_DOUBLE_EQ(gen->ProbabilityOfRank(q), 0.01);
  }
}

TEST(ZipfGeneratorTest, DeterministicForSeed) {
  auto a = ZipfGenerator::Make(1000, 1.1, 77);
  auto b = ZipfGenerator::Make(1000, 1.1, 77);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a->Next(), b->Next());
}

TEST(ZipfGeneratorTest, IdsAreStableAndScattered) {
  auto gen = ZipfGenerator::Make(100, 1.0, 5);
  ASSERT_TRUE(gen.ok());
  std::set<ItemId> ids;
  for (uint64_t q = 1; q <= 100; ++q) {
    const ItemId id = gen->IdForRank(q);
    EXPECT_EQ(id, gen->IdForRank(q)) << "ids must be stable";
    EXPECT_NE(id, 0u) << "id 0 is reserved";
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 100u) << "rank relabeling must be injective here";
}

TEST(ZipfGeneratorTest, EmpiricalHeadFrequencyMatches) {
  auto gen = ZipfGenerator::Make(10000, 1.0, 9);
  ASSERT_TRUE(gen.ok());
  constexpr int kDraws = 300000;
  std::unordered_map<ItemId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[gen->Next()];
  for (uint64_t rank : {1ull, 2ull, 5ull, 10ull}) {
    const double expected = gen->ProbabilityOfRank(rank) * kDraws;
    const double sigma = std::sqrt(expected);
    EXPECT_NEAR(counts[gen->IdForRank(rank)], expected, 6 * sigma)
        << "rank " << rank;
  }
}

TEST(ZipfGeneratorTest, DescribeMentionsParameters) {
  auto gen = ZipfGenerator::Make(42, 1.25, 1);
  ASSERT_TRUE(gen.ok());
  EXPECT_NE(gen->Describe().find("m=42"), std::string::npos);
}

TEST(UniformGeneratorTest, RejectsEmptyUniverse) {
  EXPECT_TRUE(UniformGenerator::Make(0, 1).status().IsInvalidArgument());
}

TEST(UniformGeneratorTest, CoversUniverse) {
  auto gen = UniformGenerator::Make(10, 3);
  ASSERT_TRUE(gen.ok());
  std::set<ItemId> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen->Next());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformGeneratorTest, TakeMaterializesRequestedLength) {
  auto gen = UniformGenerator::Make(10, 3);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->Take(257).size(), 257u);
}

}  // namespace
}  // namespace streamfreq
