#include "core/decayed.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hash/random.h"

namespace streamfreq {
namespace {

DecayedSketchParams SmallParams(double half_life = 1000.0) {
  DecayedSketchParams p;
  p.depth = 5;
  p.width = 1024;
  p.seed = 3;
  p.half_life = half_life;
  return p;
}

TEST(DecayedTest, RejectsBadParams) {
  DecayedSketchParams p = SmallParams();
  p.depth = 0;
  EXPECT_TRUE(DecayedCountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.half_life = 0.0;
  EXPECT_TRUE(DecayedCountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.half_life = -5.0;
  EXPECT_TRUE(DecayedCountSketch::Make(p).status().IsInvalidArgument());
}

TEST(DecayedTest, NoTicksBehavesLikePlainSketch) {
  auto s = DecayedCountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(42, 100);
  EXPECT_NEAR(s->Estimate(42), 100.0, 1e-9);
}

TEST(DecayedTest, HalfLifeHalvesContribution) {
  auto s = DecayedCountSketch::Make(SmallParams(1000.0));
  ASSERT_TRUE(s.ok());
  s->Add(7, 100);
  s->Tick(1000);  // exactly one half-life
  EXPECT_NEAR(s->Estimate(7), 50.0, 1e-6);
  s->Tick(1000);
  EXPECT_NEAR(s->Estimate(7), 25.0, 1e-6);
}

TEST(DecayedTest, RecentBeatsOldAtEqualRawCount) {
  auto s = DecayedCountSketch::Make(SmallParams(500.0));
  ASSERT_TRUE(s.ok());
  s->Add(1, 100);   // old
  s->Tick(2000);    // 4 half-lives: old item worth 6.25
  s->Add(2, 100);   // fresh
  EXPECT_GT(s->Estimate(2), 10.0 * s->Estimate(1));
}

TEST(DecayedTest, ContinuousDecayMatchesClosedForm) {
  auto s = DecayedCountSketch::Make(SmallParams(100.0));
  ASSERT_TRUE(s.ok());
  // One occurrence every tick for 300 ticks: decayed sum at the end is
  // sum_{a=0}^{299} 2^{-a/100} (age a = 299 - t).
  for (int t = 0; t < 300; ++t) {
    s->Add(9);
    if (t < 299) s->Tick();
  }
  double expect = 0.0;
  for (int age = 0; age < 300; ++age) expect += std::exp2(-age / 100.0);
  EXPECT_NEAR(s->Estimate(9), expect, 0.5);
}

TEST(DecayedTest, RenormalizationPreservesEstimates) {
  // Push the scale far past the renorm threshold: 2^64 scale growth needs
  // 64 half-lives.
  auto s = DecayedCountSketch::Make(SmallParams(10.0));
  ASSERT_TRUE(s.ok());
  s->Add(5, 1 << 20);
  for (int i = 0; i < 100; ++i) s->Tick(10);  // 100 half-lives total
  // 2^20 * 2^-100 ~ 0: but a fresh item must still be exact.
  s->Add(6, 1000);
  EXPECT_NEAR(s->Estimate(6), 1000.0, 1.0);
  EXPECT_NEAR(s->Estimate(5), 0.0, 1.0);
  EXPECT_EQ(s->Now(), 1000u);
}

TEST(DecayedTest, TrendingItemOvertakesFormerHead) {
  auto s = DecayedCountSketch::Make(SmallParams(200.0));
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(17);
  // Phase 1: item A hot.
  for (int i = 0; i < 2000; ++i) {
    if (i % 4 == 0) s->Add(111);
    s->Add(1000000 + rng.UniformBelow(10000));
    s->Tick();
  }
  // Phase 2: item B hot.
  for (int i = 0; i < 2000; ++i) {
    if (i % 4 == 0) s->Add(222);
    s->Add(2000000 + rng.UniformBelow(10000));
    s->Tick();
  }
  EXPECT_GT(s->Estimate(222), 5.0 * std::max(1.0, s->Estimate(111)));
}

TEST(DecayedTest, SpaceIndependentOfStreamLength) {
  auto s = DecayedCountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  const size_t before = s->SpaceBytes();
  for (int i = 0; i < 10000; ++i) {
    s->Add(static_cast<ItemId>(i));
    s->Tick();
  }
  EXPECT_EQ(s->SpaceBytes(), before);
}

}  // namespace
}  // namespace streamfreq
