// BatchAdd contracts: linear sketches must be bit-identical to
// item-at-a-time ingestion; counter summaries must keep their guarantees
// under the aggregate-then-weighted-add reordering.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/count_min.h"
#include "core/count_sketch.h"
#include "core/lossy_counting.h"
#include "core/misra_gries.h"
#include "core/space_saving.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

Stream MakeZipfStream(size_t n, uint64_t seed) {
  auto gen = ZipfGenerator::Make(5000, 1.1, seed);
  EXPECT_TRUE(gen.ok());
  return gen->Take(n);
}

TEST(BatchAddTest, CountSketchMatchesItemAtATimeForEveryFamily) {
  const Stream stream = MakeZipfStream(30000, 7);
  for (HashFamily family : {HashFamily::kCarterWegman,
                            HashFamily::kMultiplyShift,
                            HashFamily::kTabulation}) {
    CountSketchParams p;
    p.depth = 5;
    p.width = 512;
    p.seed = 99;
    p.family = family;
    auto batched = CountSketch::Make(p);
    auto sequential = CountSketch::Make(p);
    ASSERT_TRUE(batched.ok());
    ASSERT_TRUE(sequential.ok());

    batched->BatchAdd(std::span<const ItemId>(stream));
    for (ItemId q : stream) sequential->Add(q);

    for (size_t row = 0; row < p.depth; ++row) {
      for (size_t col = 0; col < p.width; ++col) {
        ASSERT_EQ(batched->CounterAt(row, col), sequential->CounterAt(row, col))
            << "family " << static_cast<int>(family) << " row " << row
            << " col " << col;
      }
    }
  }
}

TEST(BatchAddTest, CountSketchWeightedAndChunkedBatches) {
  const Stream stream = MakeZipfStream(10000, 8);
  CountSketchParams p;
  p.depth = 4;
  p.width = 256;
  p.seed = 5;
  auto batched = CountSketch::Make(p);
  auto sequential = CountSketch::Make(p);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(sequential.ok());

  // Ingest in uneven chunks with weight 3; compare against Add(q, 3).
  std::span<const ItemId> rest(stream);
  size_t chunk = 1;
  while (!rest.empty()) {
    const size_t take = std::min(chunk, rest.size());
    batched->BatchAdd(rest.first(take), 3);
    rest = rest.subspan(take);
    chunk = chunk * 2 + 1;
  }
  for (ItemId q : stream) sequential->Add(q, 3);

  for (size_t row = 0; row < p.depth; ++row) {
    for (size_t col = 0; col < p.width; ++col) {
      ASSERT_EQ(batched->CounterAt(row, col), sequential->CounterAt(row, col));
    }
  }
}

TEST(BatchAddTest, CountMinMatchesItemAtATime) {
  const Stream stream = MakeZipfStream(30000, 9);
  for (bool conservative : {false, true}) {
    CountMinParams p;
    p.depth = 4;
    p.width = 512;
    p.seed = 3;
    p.conservative = conservative;
    auto batched = CountMin::Make(p);
    auto sequential = CountMin::Make(p);
    ASSERT_TRUE(batched.ok());
    ASSERT_TRUE(sequential.ok());

    batched->BatchAdd(std::span<const ItemId>(stream));
    for (ItemId q : stream) sequential->Add(q);

    // Estimates must agree everywhere (plain: identical counters by
    // linearity; conservative: identical because the fallback preserves
    // stream order).
    ExactCounter oracle;
    oracle.AddAll(stream);
    for (const ItemCount& ic : oracle.TopK(200)) {
      ASSERT_EQ(batched->Estimate(ic.item), sequential->Estimate(ic.item))
          << "conservative=" << conservative;
    }
  }
}

TEST(BatchAddTest, SpaceSavingKeepsGuarantees) {
  const Stream stream = MakeZipfStream(50000, 11);
  constexpr size_t kCapacity = 200;
  auto ss = SpaceSaving::Make(kCapacity);
  ASSERT_TRUE(ss.ok());

  std::span<const ItemId> rest(stream);
  while (!rest.empty()) {
    const size_t take = std::min<size_t>(4096, rest.size());
    ss->BatchAdd(rest.first(take));
    rest = rest.subspan(take);
  }

  ExactCounter oracle;
  oracle.AddAll(stream);
  const Count n = static_cast<Count>(stream.size());
  // Upper-bound estimates, min-count bound, and coverage of heavy items.
  EXPECT_LE(ss->MinCount(), n / static_cast<Count>(kCapacity));
  for (const ItemCount& ic : oracle.TopK(50)) {
    EXPECT_GE(ss->Estimate(ic.item), ic.count) << "item " << ic.item;
    if (ic.count > n / static_cast<Count>(kCapacity)) {
      EXPECT_GT(ss->ErrorOf(ic.item) + ss->Estimate(ic.item), 0);
      EXPECT_GE(ss->Estimate(ic.item) - ss->ErrorOf(ic.item), 0);
    }
  }
}

TEST(BatchAddTest, MisraGriesKeepsGuarantees) {
  const Stream stream = MakeZipfStream(50000, 13);
  constexpr size_t kCapacity = 200;
  auto mg = MisraGries::Make(kCapacity);
  ASSERT_TRUE(mg.ok());

  std::span<const ItemId> rest(stream);
  while (!rest.empty()) {
    const size_t take = std::min<size_t>(4096, rest.size());
    mg->BatchAdd(rest.first(take));
    rest = rest.subspan(take);
  }

  ExactCounter oracle;
  oracle.AddAll(stream);
  const Count n = static_cast<Count>(stream.size());
  const Count slack = n / static_cast<Count>(kCapacity + 1);
  EXPECT_LE(mg->MaxError(), slack);
  for (const ItemCount& ic : oracle.TopK(50)) {
    // Lower-bound estimates with undercount at most n/(c+1).
    EXPECT_LE(mg->Estimate(ic.item), ic.count);
    EXPECT_GE(mg->Estimate(ic.item), ic.count - slack);
  }
}

TEST(BatchAddTest, DefaultBatchAddEqualsAddLoop) {
  // LossyCounting does not override BatchAdd: the base default must be
  // exactly the in-order Add loop.
  const Stream stream = MakeZipfStream(20000, 17);
  auto batched = LossyCounting::Make(0.001);
  auto sequential = LossyCounting::Make(0.001);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(sequential.ok());

  batched->BatchAdd(std::span<const ItemId>(stream));
  sequential->AddAll(stream);

  const auto a = batched->Candidates(100);
  const auto b = sequential->Candidates(100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

}  // namespace
}  // namespace streamfreq
