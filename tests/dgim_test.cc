#include "core/dgim.h"

#include <gtest/gtest.h>

#include <deque>

#include "hash/random.h"

namespace streamfreq {
namespace {

TEST(DgimTest, RejectsBadParams) {
  EXPECT_TRUE(DgimCounter::Make(0, 2).status().IsInvalidArgument());
  EXPECT_TRUE(DgimCounter::Make(100, 0).status().IsInvalidArgument());
}

TEST(DgimTest, EmptyCounterEstimatesZero) {
  auto c = DgimCounter::Make(100);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Estimate(), 0u);
  EXPECT_EQ(c->LowerBound(), 0u);
  EXPECT_EQ(c->UpperBound(), 0u);
}

TEST(DgimTest, ExactForSmallCounts) {
  // With few events there are only size-1 buckets: exact.
  auto c = DgimCounter::Make(1000, 2);
  ASSERT_TRUE(c.ok());
  c->Observe(true);
  c->Observe(false);
  c->Observe(true);
  EXPECT_EQ(c->Estimate(), 2u);
  EXPECT_EQ(c->Position(), 3u);
}

TEST(DgimTest, AllEventsExpireAfterWindow) {
  auto c = DgimCounter::Make(50, 2);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 30; ++i) c->Observe(true);
  EXPECT_GT(c->Estimate(), 0u);
  for (int i = 0; i < 60; ++i) c->Observe(false);
  EXPECT_EQ(c->UpperBound(), 0u) << "everything fell out of the window";
}

TEST(DgimTest, BoundsBracketTruthOnRandomStream) {
  constexpr uint64_t kWindow = 500;
  auto c = DgimCounter::Make(kWindow, 2);
  ASSERT_TRUE(c.ok());
  Xoshiro256 rng(7);
  std::deque<bool> recent;
  for (int i = 0; i < 20000; ++i) {
    const bool event = rng.UniformDouble() < 0.3;
    c->Observe(event);
    recent.push_back(event);
    if (recent.size() > kWindow) recent.pop_front();
    if (i % 97 == 0) {
      uint64_t truth = 0;
      for (bool b : recent) truth += b;
      ASSERT_GE(c->UpperBound(), truth) << "step " << i;
      ASSERT_LE(c->LowerBound(), truth) << "step " << i;
    }
  }
}

TEST(DgimTest, RelativeErrorWithinBucketGuarantee) {
  constexpr uint64_t kWindow = 1000;
  constexpr size_t kPerSize = 2;
  auto c = DgimCounter::Make(kWindow, kPerSize);
  ASSERT_TRUE(c.ok());
  Xoshiro256 rng(11);
  std::deque<bool> recent;
  double worst = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const bool event = rng.UniformDouble() < 0.5;
    c->Observe(event);
    recent.push_back(event);
    if (recent.size() > kWindow) recent.pop_front();
    if (i > 2000 && i % 137 == 0) {
      uint64_t truth = 0;
      for (bool b : recent) truth += b;
      if (truth > 0) {
        const double err =
            std::abs(static_cast<double>(c->Estimate()) -
                     static_cast<double>(truth)) /
            static_cast<double>(truth);
        worst = std::max(worst, err);
      }
    }
  }
  // Guarantee ~ 1/(2k) = 0.25; leave a little slack for the estimate's
  // half-oldest-bucket convention.
  EXPECT_LE(worst, 0.3) << "DGIM relative error bound violated";
}

TEST(DgimTest, HigherKGivesTighterEstimates) {
  constexpr uint64_t kWindow = 1000;
  auto measure = [&](size_t k) {
    auto c = DgimCounter::Make(kWindow, k);
    EXPECT_TRUE(c.ok());
    Xoshiro256 rng(13);
    std::deque<bool> recent;
    double total_err = 0.0;
    int samples = 0;
    for (int i = 0; i < 30000; ++i) {
      const bool event = rng.UniformDouble() < 0.5;
      c->Observe(event);
      recent.push_back(event);
      if (recent.size() > kWindow) recent.pop_front();
      if (i > 2000 && i % 119 == 0) {
        uint64_t truth = 0;
        for (bool b : recent) truth += b;
        total_err += std::abs(static_cast<double>(c->Estimate()) -
                              static_cast<double>(truth));
        ++samples;
      }
    }
    return total_err / samples;
  };
  EXPECT_LT(measure(8), measure(1));
}

TEST(DgimTest, SpaceIsLogarithmic) {
  auto c = DgimCounter::Make(1u << 20, 2);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 200000; ++i) c->Observe(true);
  // log2(200000) ~ 17.6 sizes * (k+... ) buckets: must stay tiny.
  EXPECT_LE(c->BucketCount(), 60u);
  EXPECT_LT(c->SpaceBytes(), 4096u);
}

}  // namespace
}  // namespace streamfreq
