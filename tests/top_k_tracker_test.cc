#include "core/top_k_tracker.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/adversarial.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

CountSketchParams DefaultSketch() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 2048;
  p.seed = 21;
  return p;
}

TEST(CountSketchTopKTest, RejectsZeroTracked) {
  EXPECT_TRUE(
      CountSketchTopK::Make(DefaultSketch(), 0).status().IsInvalidArgument());
}

TEST(CountSketchTopKTest, PropagatesSketchErrors) {
  CountSketchParams p = DefaultSketch();
  p.width = 0;
  EXPECT_TRUE(CountSketchTopK::Make(p, 10).status().IsInvalidArgument());
}

TEST(CountSketchTopKTest, FindsTrueTopKOnSkewedStream) {
  auto gen = ZipfGenerator::Make(10000, 1.1, 33);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(200000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  constexpr size_t kK = 20;
  auto algo = CountSketchTopK::Make(DefaultSketch(), 2 * kK);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(stream);

  std::unordered_set<ItemId> candidates;
  for (const ItemCount& ic : algo->Candidates(2 * kK)) candidates.insert(ic.item);
  size_t found = 0;
  for (const ItemCount& ic : oracle.TopK(kK)) found += candidates.count(ic.item);
  EXPECT_GE(found, kK - 1) << "nearly all true top-k must be tracked";
}

TEST(CountSketchTopKTest, TrackedCountsAreAccurate) {
  auto gen = ZipfGenerator::Make(10000, 1.2, 35);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(100000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  auto algo = CountSketchTopK::Make(DefaultSketch(), 50);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(stream);

  // Head items are tracked early, so their tracked counts (estimate at
  // insertion + exact increments) are close to truth.
  for (const ItemCount& ic : algo->Candidates(5)) {
    const double truth = static_cast<double>(oracle.CountOf(ic.item));
    EXPECT_NEAR(static_cast<double>(ic.count), truth, truth * 0.1 + 50.0);
  }
}

TEST(CountSketchTopKTest, TrackerEventsMaintainInvariant) {
  auto gen = ZipfGenerator::Make(1000, 1.0, 37);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kTracked = 10;
  auto algo = CountSketchTopK::Make(DefaultSketch(), kTracked);
  ASSERT_TRUE(algo.ok());

  std::unordered_set<ItemId> shadow;  // mirror of the tracked set
  for (int i = 0; i < 20000; ++i) {
    const ItemId q = gen->Next();
    const bool was_tracked = algo->IsTracked(q);
    const TrackerEvent e = algo->AddTracked(q);
    if (was_tracked) {
      ASSERT_FALSE(e.inserted);
      ASSERT_EQ(e.evicted, 0u);
    }
    if (e.inserted) {
      if (e.evicted != 0) {
        ASSERT_TRUE(shadow.count(e.evicted)) << "evicted item was not tracked";
        shadow.erase(e.evicted);
      }
      shadow.insert(q);
    }
    ASSERT_LE(shadow.size(), kTracked);
    ASSERT_EQ(algo->IsTracked(q), shadow.count(q) > 0);
  }
}

TEST(CountSketchTopKTest, EstimateUsesTrackedCountWhenAvailable) {
  auto algo = CountSketchTopK::Make(DefaultSketch(), 5);
  ASSERT_TRUE(algo.ok());
  for (int i = 0; i < 100; ++i) algo->Add(1);
  ASSERT_TRUE(algo->IsTracked(1));
  EXPECT_EQ(algo->Estimate(1), 100) << "tracked: exact count expected";
  EXPECT_EQ(algo->Estimate(12345), 0) << "untracked: sketch estimate";
}

TEST(CountSketchTopKTest, CandidatesTruncatedAndSorted) {
  auto algo = CountSketchTopK::Make(DefaultSketch(), 10);
  ASSERT_TRUE(algo.ok());
  for (ItemId q = 1; q <= 5; ++q) {
    for (ItemId i = 0; i < q * 10; ++i) algo->Add(q);
  }
  const auto top3 = algo->Candidates(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].item, 5u);
  EXPECT_EQ(top3[1].item, 4u);
  EXPECT_EQ(top3[2].item, 3u);
  EXPECT_GE(top3[0].count, top3[1].count);
}

TEST(CountSketchTopKTest, SolvesApproxTopOnBoundaryInstance) {
  // The adversarial instance: k head items, shadows at head-1. ApproxTop
  // permits shadows in the output (they exceed (1-eps) n_k) but must not
  // output tail items, and must include all (1+eps) n_k items = heads.
  AdversarialSpec spec;
  spec.k = 10;
  spec.shadows = 20;
  spec.head_count = 2000;
  spec.gap = 1;
  spec.tail_items = 5000;
  spec.tail_count = 3;
  spec.seed = 5;
  auto stream = MakeAdversarialStream(spec);
  ASSERT_TRUE(stream.ok());

  CountSketchParams p = DefaultSketch();
  p.width = 8192;
  auto algo = CountSketchTopK::Make(p, 40);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(*stream);

  for (const ItemCount& ic : algo->Candidates(spec.k)) {
    EXPECT_LT(ic.item, kTailBase) << "tail item in the top-k output";
    EXPECT_GE(ic.item, kHeadBase);
  }
}

TEST(CountSketchTopKTest, SpaceIncludesSketchAndHeap) {
  auto algo = CountSketchTopK::Make(DefaultSketch(), 100);
  ASSERT_TRUE(algo.ok());
  const size_t empty_space = algo->SpaceBytes();
  EXPECT_GE(empty_space, algo->sketch().SpaceBytes());
  for (ItemId q = 1; q <= 100; ++q) algo->Add(q);
  EXPECT_GT(algo->SpaceBytes(), empty_space);
}

TEST(CountSketchTopKTest, NameEncodesParameters) {
  auto algo = CountSketchTopK::Make(DefaultSketch(), 7);
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ(algo->Name(), "CountSketchTopK(t=5,b=2048,l=7)");
}

}  // namespace
}  // namespace streamfreq
