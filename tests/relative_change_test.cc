#include "core/relative_change.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/query_log.h"

namespace streamfreq {
namespace {

CountSketchParams DefaultSketch() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 4096;
  p.seed = 3;
  return p;
}

TEST(RelativeChangeTest, RejectsBadInputs) {
  EXPECT_TRUE(RelativeChangeDetector::Make(DefaultSketch(), 0, 10.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RelativeChangeDetector::Make(DefaultSketch(), 10, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RelativeChangeDetector::Make(DefaultSketch(), 10, -1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(RelativeChangeTest, FindsLargestRatioChange) {
  Stream s1, s2;
  // Item 1: 100 -> 110 (10% change). Item 2: 50 -> 400 (8x). Item 3 stable.
  for (int i = 0; i < 100; ++i) s1.push_back(1);
  for (int i = 0; i < 110; ++i) s2.push_back(1);
  for (int i = 0; i < 50; ++i) s1.push_back(2);
  for (int i = 0; i < 400; ++i) s2.push_back(2);
  for (int i = 0; i < 500; ++i) s1.push_back(3);
  for (int i = 0; i < 500; ++i) s2.push_back(3);

  auto changes =
      RelativeChangeDetector::Run(DefaultSketch(), 10, 10.0, s1, s2, 3);
  ASSERT_TRUE(changes.ok());
  ASSERT_GE(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].item, 2u) << "8x riser must rank first";
  EXPECT_EQ((*changes)[0].count_s1, 50);
  EXPECT_EQ((*changes)[0].count_s2, 400);
}

TEST(RelativeChangeTest, SmoothingSuppressesTinyRatios) {
  Stream s1, s2;
  // Without smoothing a 1 -> 30 singleton is a "30x riser"; with smoothing
  // s = 50 its score is (30+50)/(1+50) = 1.57, far below a 1000 -> 3000
  // item's (3000+50)/(1000+50) = 2.9.
  s1.push_back(100);
  for (int i = 0; i < 30; ++i) s2.push_back(100);
  for (int i = 0; i < 1000; ++i) s1.push_back(200);
  for (int i = 0; i < 3000; ++i) s2.push_back(200);

  auto strong_smoothing =
      RelativeChangeDetector::Run(DefaultSketch(), 10, 50.0, s1, s2, 1);
  ASSERT_TRUE(strong_smoothing.ok());
  ASSERT_EQ(strong_smoothing->size(), 1u);
  EXPECT_EQ((*strong_smoothing)[0].item, 200u)
      << "smoothing must prefer the absolute-and-relative riser";

  auto weak_smoothing =
      RelativeChangeDetector::Run(DefaultSketch(), 10, 0.5, s1, s2, 1);
  ASSERT_TRUE(weak_smoothing.ok());
  ASSERT_EQ(weak_smoothing->size(), 1u);
  EXPECT_EQ((*weak_smoothing)[0].item, 100u)
      << "weak smoothing chases the raw ratio";
}

TEST(RelativeChangeTest, DetectsFadersSymmetrically) {
  Stream s1, s2;
  for (int i = 0; i < 800; ++i) s1.push_back(7);  // 800 -> 100
  for (int i = 0; i < 100; ++i) s2.push_back(7);
  for (int i = 0; i < 300; ++i) s1.push_back(8);  // stable
  for (int i = 0; i < 300; ++i) s2.push_back(8);

  auto changes =
      RelativeChangeDetector::Run(DefaultSketch(), 10, 20.0, s1, s2, 1);
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].item, 7u);
  EXPECT_GT((*changes)[0].ExactRatio(20.0), 4.0);
}

TEST(RelativeChangeTest, FindsPlantedRisersInQueryLog) {
  QueryLogSpec spec;
  spec.universe = 20000;
  spec.period_length = 100000;
  spec.trending = 8;
  spec.fading = 8;
  spec.boost = 16.0;
  spec.fade = 0.0625;
  spec.seed = 23;
  auto log = MakeQueryLog(spec);
  ASSERT_TRUE(log.ok());

  auto changes = RelativeChangeDetector::Run(DefaultSketch(), 64, 30.0,
                                             log->period1, log->period2, 16);
  ASSERT_TRUE(changes.ok());
  std::unordered_set<ItemId> reported;
  for (const auto& c : *changes) reported.insert(c.item);
  size_t hits = 0;
  for (ItemId id : log->trending_ids) hits += reported.count(id);
  for (ItemId id : log->fading_ids) hits += reported.count(id);
  EXPECT_GE(hits, 12u) << "at least 75% of planted ratio-changers found";
}

TEST(RelativeChangeTest, ExactRatioUsesSmoothing) {
  RelativeChangeResult r{1, 10, 90, 0.0};
  EXPECT_DOUBLE_EQ(r.ExactRatio(10.0), 100.0 / 20.0);
  RelativeChangeResult faller{2, 90, 10, 0.0};
  EXPECT_DOUBLE_EQ(faller.ExactRatio(10.0), 100.0 / 20.0)
      << "fallers score symmetrically";
}

}  // namespace
}  // namespace streamfreq
