#include "stream/discrete_distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace streamfreq {
namespace {

TEST(DiscreteDistributionTest, RejectsBadWeights) {
  EXPECT_TRUE(DiscreteDistribution::Make({}).status().IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({0.0, 0.0}).status().IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({1.0, -1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({1.0, std::nan("")})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({1.0, INFINITY})
                  .status()
                  .IsInvalidArgument());
}

TEST(DiscreteDistributionTest, NormalizesPmf) {
  auto d = DiscreteDistribution::Make({1.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(d->Probability(1), 0.75);
  EXPECT_EQ(d->size(), 2u);
}

TEST(DiscreteDistributionTest, SingleOutcomeAlwaysSampled) {
  auto d = DiscreteDistribution::Make({42.0});
  ASSERT_TRUE(d.ok());
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d->Sample(rng), 0u);
}

TEST(DiscreteDistributionTest, ZeroWeightOutcomeNeverSampled) {
  auto d = DiscreteDistribution::Make({1.0, 0.0, 1.0});
  ASSERT_TRUE(d.ok());
  Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(d->Sample(rng), 1u);
}

TEST(DiscreteDistributionTest, EmpiricalMatchesPmf) {
  const std::vector<double> weights = {5.0, 1.0, 3.0, 1.0};
  auto d = DiscreteDistribution::Make(weights);
  ASSERT_TRUE(d.ok());
  Xoshiro256 rng(3);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[d->Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = d->Probability(i) * kDraws;
    const double sigma = std::sqrt(expected);
    EXPECT_NEAR(counts[i], expected, 6 * sigma) << "outcome " << i;
  }
}

TEST(DiscreteDistributionTest, HandlesManyOutcomes) {
  std::vector<double> weights(100000, 1.0);
  weights[0] = 100000.0;  // one heavy item among a flat tail
  auto d = DiscreteDistribution::Make(weights);
  ASSERT_TRUE(d.ok());
  Xoshiro256 rng(4);
  int heavy = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) heavy += d->Sample(rng) == 0;
  // P(0) = 0.5; 6 sigma ~ 670.
  EXPECT_NEAR(heavy, kDraws / 2, 700);
}

}  // namespace
}  // namespace streamfreq
