#include "core/dyadic.h"

#include <gtest/gtest.h>

#include <vector>

#include "hash/random.h"

namespace streamfreq {
namespace {

struct Block {
  size_t level;
  uint64_t prefix;
};

std::vector<Block> Cover(uint64_t lo, uint64_t hi, size_t bits) {
  std::vector<Block> blocks;
  ForEachDyadicBlock(lo, hi, bits,
                     [&](size_t level, uint64_t prefix) {
                       blocks.push_back({level, prefix});
                     });
  return blocks;
}

// [start, end] of a block.
std::pair<uint64_t, uint64_t> Span(const Block& b, size_t bits) {
  const size_t block_bits = bits - b.level;
  const uint64_t start = b.prefix << block_bits;
  return {start, start + (1ULL << block_bits) - 1};
}

TEST(DyadicTest, SingleKeyIsOneLeafBlock) {
  const auto blocks = Cover(5, 5, 8);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].level, 8u);
  EXPECT_EQ(blocks[0].prefix, 5u);
}

TEST(DyadicTest, FullDomainIsTheRoot) {
  const auto blocks = Cover(0, 255, 8);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].level, 0u);
}

TEST(DyadicTest, AlignedHalfIsOneBlock) {
  const auto blocks = Cover(128, 255, 8);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].level, 1u);
  EXPECT_EQ(blocks[0].prefix, 1u);
}

TEST(DyadicTest, CoverIsDisjointCompleteAndSmall) {
  Xoshiro256 rng(3);
  constexpr size_t kBits = 12;
  constexpr uint64_t kDomain = 1ULL << kBits;
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t lo = rng.UniformBelow(kDomain);
    const uint64_t hi = lo + rng.UniformBelow(kDomain - lo);
    const auto blocks = Cover(lo, hi, kBits);

    // Small: the canonical dyadic cover needs at most 2*bits blocks.
    ASSERT_LE(blocks.size(), 2 * kBits) << "[" << lo << "," << hi << "]";

    // Disjoint + complete: spans tile [lo, hi] exactly, in order.
    uint64_t cursor = lo;
    for (const Block& b : blocks) {
      const auto [start, end] = Span(b, kBits);
      ASSERT_EQ(start, cursor) << "gap or overlap at " << cursor;
      ASSERT_LE(end, hi) << "block exceeds hi";
      cursor = end + 1;
    }
    ASSERT_EQ(cursor, hi + 1) << "cover stopped early";
  }
}

TEST(DyadicTest, ExhaustiveTinyDomain) {
  constexpr size_t kBits = 4;
  for (uint64_t lo = 0; lo < 16; ++lo) {
    for (uint64_t hi = lo; hi < 16; ++hi) {
      const auto blocks = Cover(lo, hi, kBits);
      uint64_t cursor = lo;
      for (const Block& b : blocks) {
        const auto [start, end] = Span(b, kBits);
        ASSERT_EQ(start, cursor);
        cursor = end + 1;
      }
      ASSERT_EQ(cursor, hi + 1) << "[" << lo << "," << hi << "]";
    }
  }
}

}  // namespace
}  // namespace streamfreq
