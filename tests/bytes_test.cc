#include "util/bytes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamfreq {
namespace {

TEST(BytesTest, RoundTripMixedValues) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU64(0);
  w.PutU64(~0ULL);
  w.PutI64(-123456789);
  w.PutDouble(3.14159);
  EXPECT_EQ(buf.size(), 32u);

  ByteReader r(buf);
  uint64_t a, b;
  int64_t c;
  double d;
  ASSERT_TRUE(r.GetU64(&a).ok());
  ASSERT_TRUE(r.GetU64(&b).ok());
  ASSERT_TRUE(r.GetI64(&c).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, ~0ULL);
  EXPECT_EQ(c, -123456789);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, UnderflowReportsCorruption) {
  std::string buf = "short";
  ByteReader r(buf);
  uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(BytesTest, PartialReadThenUnderflow) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU64(99);
  buf.resize(12);  // 8 valid + 4 trailing
  ByteReader r(buf);
  uint64_t v;
  ASSERT_TRUE(r.GetU64(&v).ok());
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(BytesTest, PutBytesAppendsRaw) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutBytes("abc", 3);
  EXPECT_EQ(buf, "abc");
}

TEST(BytesTest, NegativeAndSpecialDoublesSurvive) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutDouble(-0.0);
  w.PutDouble(1e308);
  ByteReader r(buf);
  double a, b;
  ASSERT_TRUE(r.GetDouble(&a).ok());
  ASSERT_TRUE(r.GetDouble(&b).ok());
  EXPECT_EQ(a, 0.0);
  EXPECT_TRUE(std::signbit(a));
  EXPECT_DOUBLE_EQ(b, 1e308);
}

}  // namespace
}  // namespace streamfreq
