// Interface-conformance and determinism sweeps over every algorithm the
// suite can build: contracts that the harness (and any downstream user)
// relies on regardless of which algorithm is plugged in.
#include <gtest/gtest.h>

#include <memory>

#include "eval/suite.h"
#include "eval/workload.h"

namespace streamfreq {
namespace {

const AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kCountSketchTopK,
    AlgorithmKind::kCountMinTopK,
    AlgorithmKind::kCountMinConservativeTopK,
    AlgorithmKind::kMisraGries,
    AlgorithmKind::kLossyCounting,
    AlgorithmKind::kSpaceSaving,
    AlgorithmKind::kStreamSummarySpaceSaving,
    AlgorithmKind::kStickySampling,
    AlgorithmKind::kSampling,
    AlgorithmKind::kConciseSampling,
    AlgorithmKind::kCountingSampling,
};

std::string KindName(const ::testing::TestParamInfo<AlgorithmKind>& info) {
  SuiteSpec spec;
  auto algo = MakeAlgorithm(info.param, spec);
  EXPECT_TRUE(algo.ok());
  std::string name = (*algo)->Name();
  // Sanitize for gtest: keep alphanumerics only.
  std::string clean;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) clean.push_back(c);
  }
  return clean;
}

class ConformanceTest : public ::testing::TestWithParam<AlgorithmKind> {
 protected:
  static SuiteSpec Spec() {
    SuiteSpec spec;
    spec.space_budget_bytes = 16 * 1024;
    spec.k = 10;
    spec.seed = 5;
    spec.expected_stream_length = 60000;
    return spec;
  }
};

TEST_P(ConformanceTest, NameIsNonEmptyAndStable) {
  auto a = MakeAlgorithm(GetParam(), Spec());
  auto b = MakeAlgorithm(GetParam(), Spec());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE((*a)->Name().empty());
  EXPECT_EQ((*a)->Name(), (*b)->Name());
}

TEST_P(ConformanceTest, CandidatesSortedTruncatedAndSpaceAccounted) {
  auto workload = MakeZipfWorkload(20000, 1.0, 60000, 9);
  ASSERT_TRUE(workload.ok());
  auto algo = MakeAlgorithm(GetParam(), Spec());
  ASSERT_TRUE(algo.ok());
  (*algo)->AddAll(workload->stream);

  for (size_t k : {1u, 5u, 100u}) {
    const auto candidates = (*algo)->Candidates(k);
    ASSERT_LE(candidates.size(), k);
    for (size_t i = 1; i < candidates.size(); ++i) {
      ASSERT_GE(candidates[i - 1].count, candidates[i].count)
          << "candidates must be sorted descending";
    }
  }
  EXPECT_GT((*algo)->SpaceBytes(), 0u);
}

TEST_P(ConformanceTest, DeterministicForFixedSeed) {
  auto workload = MakeZipfWorkload(20000, 1.1, 60000, 11);
  ASSERT_TRUE(workload.ok());
  auto a = MakeAlgorithm(GetParam(), Spec());
  auto b = MakeAlgorithm(GetParam(), Spec());
  ASSERT_TRUE(a.ok() && b.ok());
  (*a)->AddAll(workload->stream);
  (*b)->AddAll(workload->stream);

  const auto ca = (*a)->Candidates(10);
  const auto cb = (*b)->Candidates(10);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].item, cb[i].item) << "rank " << i;
    EXPECT_EQ(ca[i].count, cb[i].count) << "rank " << i;
  }
  for (const ItemCount& ic : ca) {
    EXPECT_EQ((*a)->Estimate(ic.item), (*b)->Estimate(ic.item));
  }
}

TEST_P(ConformanceTest, WeightedAddAccepted) {
  auto algo = MakeAlgorithm(GetParam(), Spec());
  ASSERT_TRUE(algo.ok());
  // Weight large enough that even low-rate samplers keep some of it.
  (*algo)->Add(42, 20000);
  (*algo)->Add(42);
  // The algorithm need not be exact, but a single dominant item must top
  // the candidates.
  const auto candidates = (*algo)->Candidates(1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].item, 42u);
}

TEST_P(ConformanceTest, EstimateOfUnseenItemIsBounded) {
  auto algo = MakeAlgorithm(GetParam(), Spec());
  ASSERT_TRUE(algo.ok());
  for (ItemId q = 1; q <= 1000; ++q) (*algo)->Add(q);
  // An unseen item's estimate may be an upper bound (SS: min count) or
  // sketch noise, but never larger than the whole stream.
  EXPECT_LE((*algo)->Estimate(999999999), 1000);
  EXPECT_GE((*algo)->Estimate(999999999), -1000);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConformanceTest,
                         ::testing::ValuesIn(kAllKinds), KindName);

}  // namespace
}  // namespace streamfreq
