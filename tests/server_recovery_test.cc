// Crash-recovery battery for the durable tenant layer (PR "durable
// tenants"): WAL framing and replay (torn tails at every truncation
// boundary, bit flips, duplicate sequences, gaps), TenantStore
// snapshot+journal recovery, and whole-service recovery with the
// conservation ledger and bit-identical sketches.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/count_sketch.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/snapshotter.h"
#include "server/wal.h"
#include "util/bytes.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace streamfreq {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Appends `batches` as records 1..N and returns the journal path.
std::string WriteJournal(const std::string& dir,
                         const std::vector<std::vector<ItemId>>& batches) {
  const std::string path = dir + "/journal.sfw";
  auto wal = WalWriter::Open(path, WalFsync::kNever);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  uint64_t seqno = 0;
  for (const std::vector<ItemId>& batch : batches) {
    EXPECT_TRUE(wal->Append(++seqno, batch).ok());
  }
  return path;
}

struct Replayed {
  std::vector<uint64_t> seqnos;
  std::vector<ItemId> items;
};

Result<WalReplayStats> Replay(const std::string& path, uint64_t base,
                              Replayed* out) {
  return ReplayWal(path, base,
                   [out](uint64_t seqno, std::span<const ItemId> items) {
                     out->seqnos.push_back(seqno);
                     out->items.insert(out->items.end(), items.begin(),
                                       items.end());
                     return Status::OK();
                   });
}

TEST(WalTest, RoundTrip) {
  const std::string dir = TempDir("wal_roundtrip");
  const std::string path =
      WriteJournal(dir, {{1, 2, 3}, {4, 5}, {6}});
  Replayed got;
  auto stats = Replay(path, 0, &got);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_applied, 3u);
  EXPECT_EQ(stats->last_seqno, 3u);
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(stats->duplicates_skipped, 0u);
  EXPECT_EQ(got.seqnos, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(got.items, (std::vector<ItemId>{1, 2, 3, 4, 5, 6}));
}

TEST(WalTest, MissingJournalIsEmpty) {
  Replayed got;
  auto stats = Replay(TempDir("wal_missing") + "/nope.sfw", 7, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 0u);
  EXPECT_EQ(stats->last_seqno, 7u);
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_TRUE(got.seqnos.empty());
}

// The load-bearing property: truncation at EVERY byte boundary — through
// the magic, the length, the CRC, and each payload byte of the final
// record — yields the intact prefix plus a reported torn tail. Replay
// never errors and never mis-applies on a torn write.
TEST(WalTest, TornTailAtEveryTruncationBoundary) {
  const std::string dir = TempDir("wal_torn");
  const std::string path = WriteJournal(dir, {{10, 11}, {20}, {30, 31, 32}});
  const std::string full = ReadFileBytes(path);
  // Record sizes: header 20 + payload (16 + 8*count).
  const size_t rec1 = 20 + 16 + 8 * 2;
  const size_t rec2 = 20 + 16 + 8 * 1;
  ASSERT_EQ(full.size(), rec1 + rec2 + (20 + 16 + 8 * 3));

  for (size_t keep = 0; keep <= full.size(); ++keep) {
    WriteFileBytes(path, full.substr(0, keep));
    Replayed got;
    auto stats = Replay(path, 0, &got);
    ASSERT_TRUE(stats.ok()) << "keep=" << keep << ": "
                            << stats.status().ToString();
    const size_t expect_records =
        keep >= full.size() ? 3 : keep >= rec1 + rec2 ? 2 : keep >= rec1 ? 1
                                                                         : 0;
    EXPECT_EQ(stats->records_applied, expect_records) << "keep=" << keep;
    const bool boundary =
        keep == 0 || keep == rec1 || keep == rec1 + rec2 || keep == full.size();
    EXPECT_EQ(stats->torn_tail, !boundary) << "keep=" << keep;
    if (!boundary) {
      EXPECT_GT(stats->discarded_bytes, 0u) << "keep=" << keep;
    }
    // The applied prefix is byte-exact, never partial.
    std::vector<ItemId> expect_items;
    if (expect_records >= 1) expect_items.insert(expect_items.end(), {10, 11});
    if (expect_records >= 2) expect_items.push_back(20);
    if (expect_records >= 3) {
      expect_items.insert(expect_items.end(), {30, 31, 32});
    }
    EXPECT_EQ(got.items, expect_items) << "keep=" << keep;
  }
}

// A flipped byte in the middle record ends replay there — even though a
// fully intact record follows. Skipping over damage would silently reorder
// history.
TEST(WalTest, BitFlipStopsReplayAtTheDamage) {
  const std::string dir = TempDir("wal_bitflip");
  const std::string path = WriteJournal(dir, {{1, 2}, {3, 4}, {5, 6}});
  std::string data = ReadFileBytes(path);
  const size_t rec = 20 + 16 + 8 * 2;
  for (const size_t victim : {rec + 25, rec + 5, rec}) {  // payload, len, magic
    std::string damaged = data;
    damaged[victim] ^= 0x40;
    WriteFileBytes(path, damaged);
    Replayed got;
    auto stats = Replay(path, 0, &got);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->records_applied, 1u);
    EXPECT_TRUE(stats->torn_tail);
    EXPECT_EQ(stats->discarded_bytes, data.size() - rec);
    EXPECT_EQ(got.items, (std::vector<ItemId>{1, 2}));
  }
}

// Records at or below the snapshot's base seqno are the crash window
// between snapshot publish and journal truncation: skipped exactly-once.
TEST(WalTest, DuplicateSequencesBelowBaseAreSkipped) {
  const std::string dir = TempDir("wal_dup");
  const std::string path =
      WriteJournal(dir, {{1}, {2}, {3}, {4}});
  Replayed got;
  auto stats = Replay(path, 2, &got);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->duplicates_skipped, 2u);
  EXPECT_EQ(stats->records_applied, 2u);
  EXPECT_EQ(stats->last_seqno, 4u);
  EXPECT_EQ(got.seqnos, (std::vector<uint64_t>{3, 4}));

  // Base beyond the whole journal: everything is a duplicate.
  Replayed none;
  auto all_dup = Replay(path, 10, &none);
  ASSERT_TRUE(all_dup.ok());
  EXPECT_EQ(all_dup->duplicates_skipped, 4u);
  EXPECT_EQ(all_dup->records_applied, 0u);
  EXPECT_EQ(all_dup->last_seqno, 10u);
}

TEST(WalTest, SequenceGapIsCorruption) {
  const std::string dir = TempDir("wal_gap");
  const std::string path = dir + "/journal.sfw";
  {
    auto wal = WalWriter::Open(path, WalFsync::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(1, std::vector<ItemId>{1}).ok());
    ASSERT_TRUE(wal->Append(3, std::vector<ItemId>{3}).ok());  // gap: no 2
  }
  Replayed got;
  EXPECT_TRUE(Replay(path, 0, &got).status().IsCorruption());
}

// A CRC-valid record whose payload is malformed was written whole — that
// is not a torn tail, it is a bug or tampering, and it fails loudly.
TEST(WalTest, CrcValidMalformedPayloadIsCorruption) {
  const std::string dir = TempDir("wal_malformed");
  const std::string path = dir + "/journal.sfw";
  std::string payload;
  ByteWriter pw(&payload);
  pw.PutU64(1);  // seqno
  pw.PutU64(5);  // claims 5 items...
  pw.PutU64(42);  // ...but carries 1
  std::string record;
  ByteWriter w(&record);
  w.PutU64(kWalMagic);
  w.PutU64(payload.size());
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  w.PutBytes(&crc, sizeof(crc));
  record += payload;
  WriteFileBytes(path, record);
  Replayed got;
  EXPECT_TRUE(Replay(path, 0, &got).status().IsCorruption());
}

TEST(WalTest, TruncateDiscardsEverything) {
  const std::string dir = TempDir("wal_truncate");
  const std::string path = dir + "/journal.sfw";
  auto wal = WalWriter::Open(path, WalFsync::kAlways);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(1, std::vector<ItemId>{1, 2, 3}).ok());
  ASSERT_TRUE(wal->Truncate().ok());
  ASSERT_TRUE(wal->Append(2, std::vector<ItemId>{9}).ok());
  Replayed got;
  auto stats = Replay(path, 1, &got);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_applied, 1u);
  EXPECT_EQ(got.items, (std::vector<ItemId>{9}));
}

// ---------------------------------------------------------------------------
// WalFsync::kBatch: the bounded ack-durability window.
// ---------------------------------------------------------------------------

TEST(WalBatchFsyncTest, PolicyNameRoundTrips) {
  EXPECT_STREQ(WalFsyncName(WalFsync::kBatch), "batch");
  auto parsed = WalFsyncFromName("batch");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, WalFsync::kBatch);
  EXPECT_TRUE(WalFsyncFromName("sometimes").status().IsInvalidArgument());
}

TEST(WalBatchFsyncTest, FsyncsOnTheBatchCadenceExactly) {
  const std::string dir = TempDir("wal_batch_cadence");
  auto wal = WalWriter::Open(dir + "/journal.sfw", WalFsync::kBatch);
  ASSERT_TRUE(wal.ok());
  const uint64_t appends = 2 * kWalBatchFsyncEvery + 4;  // 20 when every=8
  for (uint64_t seqno = 1; seqno <= appends; ++seqno) {
    ASSERT_TRUE(wal->Append(seqno, std::vector<ItemId>{seqno}).ok());
    // The window invariant after EVERY append, not just at the end: the
    // page cache never holds a full batch of acknowledged records.
    ASSERT_LT(wal->unsynced_appends(), kWalBatchFsyncEvery) << seqno;
    ASSERT_EQ(wal->fsyncs(), seqno / kWalBatchFsyncEvery) << seqno;
  }
  EXPECT_EQ(wal->fsyncs(), appends / kWalBatchFsyncEvery);
  EXPECT_EQ(wal->unsynced_appends(), appends % kWalBatchFsyncEvery);
}

TEST(WalBatchFsyncTest, AlwaysAndNeverAreTheCadenceExtremes) {
  const std::string dir = TempDir("wal_batch_extremes");
  auto always = WalWriter::Open(dir + "/always.sfw", WalFsync::kAlways);
  auto never = WalWriter::Open(dir + "/never.sfw", WalFsync::kNever);
  ASSERT_TRUE(always.ok() && never.ok());
  for (uint64_t seqno = 1; seqno <= 5; ++seqno) {
    ASSERT_TRUE(always->Append(seqno, std::vector<ItemId>{seqno}).ok());
    ASSERT_TRUE(never->Append(seqno, std::vector<ItemId>{seqno}).ok());
  }
  EXPECT_EQ(always->fsyncs(), 5u);
  EXPECT_EQ(always->unsynced_appends(), 0u);
  EXPECT_EQ(never->fsyncs(), 0u);
  EXPECT_EQ(never->unsynced_appends(), 5u);
}

TEST(WalBatchFsyncTest, FsyncFailpointFiresAtTheBatchBoundaryOnly) {
  const std::string dir = TempDir("wal_batch_failpoint");
  auto wal = WalWriter::Open(dir + "/journal.sfw", WalFsync::kBatch);
  ASSERT_TRUE(wal.ok());
  ScopedFailpoints failpoints("wal.fsync=error*1", /*seed=*/1);
  ASSERT_TRUE(failpoints.status().ok());
  // The first batch-1 appends never reach the fsync site; the batch-th
  // does and eats the injected error.
  for (uint64_t seqno = 1; seqno < kWalBatchFsyncEvery; ++seqno) {
    ASSERT_TRUE(wal->Append(seqno, std::vector<ItemId>{seqno}).ok()) << seqno;
  }
  const Status boundary =
      wal->Append(kWalBatchFsyncEvery, std::vector<ItemId>{8});
  EXPECT_TRUE(boundary.IsIoError()) << boundary.ToString();
  // Every record was written and flushed before the failed barrier: the
  // journal itself replays cleanly (the caller poisons the store instead).
  Replayed got;
  auto stats = Replay(dir + "/journal.sfw", 0, &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, kWalBatchFsyncEvery);
}

// ---------------------------------------------------------------------------
// TenantStore: snapshot + journal recovery.
// ---------------------------------------------------------------------------

TenantSpec TestSpec() {
  TenantSpec spec;
  spec.depth = 4;
  spec.width = 256;
  spec.seed = 77;
  spec.threads = 2;
  spec.batch_items = 128;
  spec.queue_batches = 4;
  spec.push_timeout_ms = 0;
  spec.policy = OverflowPolicy::kShed;
  spec.tracked = 32;
  return spec;
}

CountSketchParams TestParams() {
  CountSketchParams params;
  params.depth = 4;
  params.width = 256;
  params.seed = 77;
  return params;
}

TEST(TenantStoreTest, CreateAppendReopenReplays) {
  const std::string dir = TempDir("store_roundtrip") + "/t";
  {
    auto store = TenantStore::Create(dir, TestSpec(), TestParams(),
                                     WalFsync::kAlways, /*every=*/1 << 20);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{1, 2, 3}).ok());
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{2, 3, 4, 4}).ok());
    EXPECT_EQ((*store)->last_seqno(), 2u);
    EXPECT_EQ((*store)->durable_items(), 7u);
  }  // "crash": no snapshot since create, the journal carries everything

  auto opened = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->recovery.recovered);
  EXPECT_EQ(opened->recovery.snapshot_seqno, 0u);
  EXPECT_EQ(opened->recovery.replayed_records, 2u);
  EXPECT_EQ(opened->recovery.replayed_items, 7u);
  EXPECT_EQ(opened->recovery.base_items, 7u);
  EXPECT_FALSE(opened->recovery.torn_tail);

  // The recovered sketch is the exact linear accumulation of the journal.
  auto reference = CountSketch::Make(TestParams());
  ASSERT_TRUE(reference.ok());
  for (const ItemId q : {1, 2, 3, 2, 3, 4, 4}) reference->Add(q, 1);
  std::string got_bytes, want_bytes;
  opened->sketch.SerializeTo(&got_bytes);
  reference->SerializeTo(&want_bytes);
  EXPECT_EQ(got_bytes, want_bytes);

  // Recovery re-snapshots and truncates: a second open replays nothing.
  opened->store.reset();
  auto again = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->recovery.snapshot_seqno, 2u);
  EXPECT_EQ(again->recovery.replayed_records, 0u);
  EXPECT_EQ(again->recovery.base_items, 7u);
  got_bytes.clear();
  again->sketch.SerializeTo(&got_bytes);
  EXPECT_EQ(got_bytes, want_bytes);
}

TEST(TenantStoreTest, CreateWithBatchFsyncReplays) {
  // The full durability path under kBatch: appends land in the journal
  // (flushed, possibly unsynced), a process "crash" preserves them, and
  // recovery replays the exact sketch — kBatch's weaker window only
  // matters against machine crashes, which tests cannot fake.
  const std::string dir = TempDir("store_batch") + "/t";
  const uint64_t appends = 2 * kWalBatchFsyncEvery + 3;
  {
    auto store = TenantStore::Create(dir, TestSpec(), TestParams(),
                                     WalFsync::kBatch, /*every=*/1 << 20);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (uint64_t seqno = 1; seqno <= appends; ++seqno) {
      ASSERT_TRUE((*store)->Append(std::vector<ItemId>{seqno % 5}).ok());
    }
  }  // crash with a partially-unsynced tail in the page cache

  auto opened = TenantStore::Open(dir, WalFsync::kBatch, 1 << 20);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->recovery.recovered);
  EXPECT_EQ(opened->recovery.replayed_records, appends);
  auto reference = CountSketch::Make(TestParams());
  ASSERT_TRUE(reference.ok());
  for (uint64_t seqno = 1; seqno <= appends; ++seqno) {
    reference->Add(seqno % 5, 1);
  }
  std::string got_bytes, want_bytes;
  opened->sketch.SerializeTo(&got_bytes);
  reference->SerializeTo(&want_bytes);
  EXPECT_EQ(got_bytes, want_bytes);
}

TEST(TenantStoreTest, SnapshotWithNoJournalRecovers) {
  const std::string dir = TempDir("store_nojournal") + "/t";
  {
    auto store = TenantStore::Create(dir, TestSpec(), TestParams(),
                                     WalFsync::kAlways, 1 << 20);
    ASSERT_TRUE(store.ok());
  }
  ASSERT_TRUE(std::filesystem::remove(TenantStore::JournalPath(dir)));
  auto opened = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->recovery.replayed_records, 0u);
  EXPECT_EQ(opened->recovery.base_items, 0u);
}

// A journal with no snapshot has no base state: silent re-creation would
// hide data loss, so recovery must refuse.
TEST(TenantStoreTest, JournalWithoutSnapshotIsRefused) {
  const std::string dir = TempDir("store_nosnap") + "/t";
  std::filesystem::create_directories(dir);
  WriteJournal(dir, {{1, 2, 3}});
  EXPECT_FALSE(TenantStore::Open(dir, WalFsync::kAlways, 1 << 20).ok());
}

TEST(TenantStoreTest, CreateRefusesExistingSnapshot) {
  const std::string dir = TempDir("store_exists") + "/t";
  ASSERT_TRUE(TenantStore::Create(dir, TestSpec(), TestParams(),
                                  WalFsync::kAlways, 1 << 20)
                  .ok());
  auto second = TenantStore::Create(dir, TestSpec(), TestParams(),
                                    WalFsync::kAlways, 1 << 20);
  EXPECT_TRUE(second.status().IsInvalidArgument());
}

TEST(TenantStoreTest, TornJournalTailRecoversPrefixThenHeals) {
  const std::string dir = TempDir("store_torn") + "/t";
  {
    auto store = TenantStore::Create(dir, TestSpec(), TestParams(),
                                     WalFsync::kAlways, 1 << 20);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{1, 2}).ok());
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{3}).ok());
  }
  const std::string journal = TenantStore::JournalPath(dir);
  const std::string full = ReadFileBytes(journal);
  WriteFileBytes(journal, full.substr(0, full.size() - 3));  // tear record 2

  auto opened = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->recovery.torn_tail);
  EXPECT_EQ(opened->recovery.replayed_records, 1u);
  EXPECT_EQ(opened->recovery.base_items, 2u);
  EXPECT_GT(opened->recovery.discarded_bytes, 0u);

  // Recovery re-snapshotted and truncated: the torn bytes are gone, new
  // appends land on a clean journal.
  ASSERT_TRUE(opened->store->Append(std::vector<ItemId>{7}).ok());
  opened->store.reset();
  auto again = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->recovery.torn_tail);
  EXPECT_EQ(again->recovery.replayed_records, 1u);
  EXPECT_EQ(again->recovery.base_items, 3u);
}

TEST(TenantStoreTest, BitFlippedSnapshotIsRefused) {
  const std::string dir = TempDir("store_snapflip") + "/t";
  ASSERT_TRUE(TenantStore::Create(dir, TestSpec(), TestParams(),
                                  WalFsync::kAlways, 1 << 20)
                  .ok());
  const std::string snap = TenantStore::SnapshotPath(dir);
  std::string data = ReadFileBytes(snap);
  data[data.size() / 2] ^= 0x20;
  WriteFileBytes(snap, data);
  EXPECT_FALSE(TenantStore::Open(dir, WalFsync::kAlways, 1 << 20).ok());
}

// ---------------------------------------------------------------------------
// Whole-service recovery: ledger conservation + bit-identity across a
// simulated crash (the service object dies, the data dir survives).
// ---------------------------------------------------------------------------

int64_t JsonField(const std::string& json, const std::string& scope,
                  const std::string& field) {
  const size_t at = json.find("\"" + scope + "\":{");
  if (at == std::string::npos) return -1;
  const size_t field_at = json.find("\"" + field + "\":", at);
  if (field_at == std::string::npos || field_at > json.find('}', at)) {
    return -1;
  }
  return std::strtoll(json.c_str() + field_at + field.size() + 3, nullptr, 10);
}

Response Handle1(SketchService& svc, Opcode op, const std::string& tenant,
                 std::vector<ItemId> items = {}) {
  Request req;
  req.op = op;
  req.tenant = tenant;
  req.items = std::move(items);
  if (op == Opcode::kCreateTenant) req.spec = TestSpec();
  if (op == Opcode::kTopK) req.k = 5;
  return svc.Handle(req);
}

TEST(ServiceRecoveryTest, RecoverReplaysLedgerAndSketchExactly) {
  const std::string data_dir = TempDir("svc_recover");
  ServiceOptions options;
  options.data_dir = data_dir;
  options.fsync = WalFsync::kAlways;
  options.snapshot_every_items = 1 << 20;  // force journal-tail recovery

  std::vector<ItemId> stream;
  for (ItemId q = 0; q < 3000; ++q) stream.push_back(q % 97);

  {
    SketchService svc(options);
    ASSERT_TRUE(svc.Recover().ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kCreateTenant, "t").ok());
    for (size_t begin = 0; begin < stream.size(); begin += 500) {
      const size_t len = std::min<size_t>(500, stream.size() - begin);
      ASSERT_TRUE(Handle1(svc, Opcode::kIngest, "t",
                          std::vector<ItemId>(stream.begin() + begin,
                                              stream.begin() + begin + len))
                      .ok());
    }
  }  // service dies without sealing; the journal carries every batch

  SketchService svc(options);
  ASSERT_TRUE(svc.Recover().ok());
  EXPECT_TRUE(svc.recovery_failures().empty());
  EXPECT_EQ(svc.TenantCount(), 1u);

  const Response info = Handle1(svc, Opcode::kRecoveryInfo, "t");
  ASSERT_TRUE(info.ok()) << info.message;
  EXPECT_NE(info.blob.find("\"recovered\":true"), std::string::npos);
  EXPECT_NE(info.blob.find("\"replayed_records\":6"), std::string::npos);

  // Conservation across the crash: the recovered prefix is base_ingested.
  const std::string tenants = svc.TenantsJson();
  const int64_t offered = JsonField(tenants, "t", "offered_items");
  const int64_t rejected = JsonField(tenants, "t", "rejected_items");
  const int64_t ingested = JsonField(tenants, "t", "items_ingested");
  const int64_t dropped = JsonField(tenants, "t", "dropped_items");
  const int64_t base = JsonField(tenants, "t", "base_ingested");
  EXPECT_EQ(base, 3000);
  EXPECT_EQ(offered - rejected, base + ingested + dropped);

  // Bit-identity: the recovered serving sketch equals a sequential run.
  const Response exported = Handle1(svc, Opcode::kExport, "t");
  ASSERT_TRUE(exported.ok()) << exported.message;
  auto recovered = CountSketch::Deserialize(exported.blob);
  ASSERT_TRUE(recovered.ok());
  auto reference = CountSketch::Make(TestParams());
  ASSERT_TRUE(reference.ok());
  for (const ItemId q : stream) reference->Add(q, 1);
  std::string got_bytes, want_bytes;
  recovered->SerializeTo(&got_bytes);
  reference->SerializeTo(&want_bytes);
  EXPECT_EQ(got_bytes, want_bytes);

  // The recovered tenant keeps serving and ingesting.
  ASSERT_TRUE(Handle1(svc, Opcode::kIngest, "t", {1, 2, 3}).ok());
  EXPECT_TRUE(Handle1(svc, Opcode::kTopK, "t").ok());
}

TEST(ServiceRecoveryTest, SealedTenantRecoversReadOnly) {
  const std::string data_dir = TempDir("svc_sealed");
  ServiceOptions options;
  options.data_dir = data_dir;

  {
    SketchService svc(options);
    ASSERT_TRUE(svc.Recover().ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kCreateTenant, "t").ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kIngest, "t", {5, 5, 6}).ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kSeal, "t").ok());
  }

  SketchService svc(options);
  ASSERT_TRUE(svc.Recover().ok());
  EXPECT_TRUE(Handle1(svc, Opcode::kTopK, "t").ok());
  const Response rejected = Handle1(svc, Opcode::kIngest, "t", {7});
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.message.find("sealed"), std::string::npos);
}

TEST(ServiceRecoveryTest, CorruptTenantIsReportedNotRecreated) {
  const std::string data_dir = TempDir("svc_corrupt");
  ServiceOptions options;
  options.data_dir = data_dir;

  {
    SketchService svc(options);
    ASSERT_TRUE(svc.Recover().ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kCreateTenant, "t").ok());
    ASSERT_TRUE(Handle1(svc, Opcode::kIngest, "t", {1, 2, 3}).ok());
  }
  const std::string snap = TenantStore::SnapshotPath(data_dir + "/t");
  std::string data = ReadFileBytes(snap);
  data[data.size() - 5] ^= 0x01;
  WriteFileBytes(snap, data);

  SketchService svc(options);
  ASSERT_TRUE(svc.Recover().ok());  // service survives; the tenant does not
  EXPECT_EQ(svc.TenantCount(), 0u);
  const auto failures = svc.recovery_failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_TRUE(failures.count("t"));
  // The damaged directory still holds a snapshot, so re-creating the name
  // is refused instead of silently shadowing the broken state.
  EXPECT_FALSE(Handle1(svc, Opcode::kCreateTenant, "t").ok());
}

TEST(ServiceRecoveryTest, DuplicateJournalRecordsAreDedupedOnReplay) {
  // Simulate the crash window between snapshot publish and journal
  // truncation: the snapshot covers seqnos 1..2, the journal still holds
  // 1..3. Only record 3 may be applied.
  const std::string dir = TempDir("svc_dup") + "/t";
  {
    auto store = TenantStore::Create(dir, TestSpec(), TestParams(),
                                     WalFsync::kAlways, 1 << 20);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{1}).ok());
    ASSERT_TRUE((*store)->Append(std::vector<ItemId>{2}).ok());
    LedgerSample ledger;
    ledger.candidate_capacity = TestSpec().tracked;
    ASSERT_TRUE((*store)->WriteSnapshot(ledger).ok());
    // WriteSnapshot truncated the journal; re-append records 1..3 as the
    // pre-truncation file would have held them.
  }
  {
    auto wal = WalWriter::Open(TenantStore::JournalPath(dir),
                               WalFsync::kAlways);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(1, std::vector<ItemId>{1}).ok());
    ASSERT_TRUE(wal->Append(2, std::vector<ItemId>{2}).ok());
    ASSERT_TRUE(wal->Append(3, std::vector<ItemId>{3}).ok());
  }
  auto opened = TenantStore::Open(dir, WalFsync::kAlways, 1 << 20);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->recovery.duplicates_skipped, 2u);
  EXPECT_EQ(opened->recovery.replayed_records, 1u);
  EXPECT_EQ(opened->recovery.base_items, 3u);

  auto reference = CountSketch::Make(TestParams());
  ASSERT_TRUE(reference.ok());
  for (const ItemId q : {1, 2, 3}) reference->Add(q, 1);
  std::string got_bytes, want_bytes;
  opened->sketch.SerializeTo(&got_bytes);
  reference->SerializeTo(&want_bytes);
  EXPECT_EQ(got_bytes, want_bytes);
}

}  // namespace
}  // namespace streamfreq
