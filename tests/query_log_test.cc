#include "stream/query_log.h"

#include <gtest/gtest.h>

#include "stream/exact_counter.h"

namespace streamfreq {
namespace {

TEST(QueryLogTest, RejectsBadSpecs) {
  QueryLogSpec spec;
  spec.universe = 0;
  EXPECT_TRUE(MakeQueryLog(spec).status().IsInvalidArgument());

  spec = QueryLogSpec{};
  spec.period_length = 0;
  EXPECT_TRUE(MakeQueryLog(spec).status().IsInvalidArgument());

  spec = QueryLogSpec{};
  spec.trending = 60;
  spec.fading = 60;
  spec.universe = 100;
  EXPECT_TRUE(MakeQueryLog(spec).status().IsInvalidArgument());

  spec = QueryLogSpec{};
  spec.boost = 0.5;  // must be > 1
  EXPECT_TRUE(MakeQueryLog(spec).status().IsInvalidArgument());

  spec = QueryLogSpec{};
  spec.fade = 1.5;  // must be < 1
  EXPECT_TRUE(MakeQueryLog(spec).status().IsInvalidArgument());
}

TEST(QueryLogTest, PeriodsHaveRequestedLength) {
  QueryLogSpec spec;
  spec.universe = 1000;
  spec.period_length = 20000;
  spec.trending = 5;
  spec.fading = 5;
  auto log = MakeQueryLog(spec);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->period1.size(), 20000u);
  EXPECT_EQ(log->period2.size(), 20000u);
  EXPECT_EQ(log->trending_ids.size(), 5u);
  EXPECT_EQ(log->fading_ids.size(), 5u);
}

TEST(QueryLogTest, TrendingItemsActuallyRise) {
  QueryLogSpec spec;
  spec.universe = 10000;
  spec.period_length = 200000;
  spec.trending = 10;
  spec.fading = 10;
  spec.boost = 8.0;
  spec.fade = 0.125;
  auto log = MakeQueryLog(spec);
  ASSERT_TRUE(log.ok());

  ExactCounter c1, c2;
  c1.AddAll(log->period1);
  c2.AddAll(log->period2);

  for (ItemId id : log->trending_ids) {
    EXPECT_GT(c2.CountOf(id), 2 * c1.CountOf(id))
        << "trending item should at least double";
  }
  for (ItemId id : log->fading_ids) {
    EXPECT_LT(2 * c2.CountOf(id), c1.CountOf(id))
        << "fading item should at least halve";
  }
}

TEST(QueryLogTest, DeterministicPerSeed) {
  QueryLogSpec spec;
  spec.universe = 100;
  spec.period_length = 1000;
  auto a = MakeQueryLog(spec);
  auto b = MakeQueryLog(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->period1, b->period1);
  EXPECT_EQ(a->period2, b->period2);
}

}  // namespace
}  // namespace streamfreq
