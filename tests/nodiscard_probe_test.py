#!/usr/bin/env python3
"""Compile-time proof that Status/Result cannot be silently discarded.

Registered as the `nodiscard_probe_test` ctest. Runs the project compiler
(passed by CMake) in syntax-only mode over two probes:

  * nodiscard_probes/drop_status.cc discards a Status and a Result and must
    FAIL to compile, with the diagnostic naming the nodiscard attribute;
  * nodiscard_probes/use_status.cc consumes them (and shows the sanctioned
    `(void)` escape hatch) and must compile clean,

so a regression that strips the class-level [[nodiscard]] from status.h or
result.h -- or a toolchain that stops enforcing it -- fails this test rather
than silently re-legalizing dropped errors.
"""

import subprocess
import sys


def compile_probe(compiler, source_dir, probe):
    return subprocess.run(
        [
            compiler,
            "-std=c++20",
            "-fsyntax-only",
            "-Werror=unused-result",
            "-I",
            source_dir + "/src",
            source_dir + "/tests/nodiscard_probes/" + probe,
        ],
        capture_output=True,
        text=True,
    )


def main():
    if len(sys.argv) != 3:
        print("usage: nodiscard_probe_test.py <compiler> <source-dir>")
        return 2
    compiler, source_dir = sys.argv[1], sys.argv[2]

    drop = compile_probe(compiler, source_dir, "drop_status.cc")
    if drop.returncode == 0:
        print("FAIL: drop_status.cc compiled -- discarding a Status/Result "
              "is supposed to be a build error")
        return 1
    if "nodiscard" not in drop.stderr and "unused result" not in drop.stderr:
        print("FAIL: drop_status.cc failed for the wrong reason:\n"
              + drop.stderr)
        return 1

    use = compile_probe(compiler, source_dir, "use_status.cc")
    if use.returncode != 0:
        print("FAIL: control probe use_status.cc did not compile -- the "
              "drop_status failure is not attributable to [[nodiscard]]:\n"
              + use.stderr)
        return 1

    print("PASS: dropped Status/Result is a compile error; consumed values "
          "compile clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
