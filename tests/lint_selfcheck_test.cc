// Self-check for the sfq-lint static checker (tools/sfq_lint.py, whose
// implementation is the tools/sfq_lint/ package).
//
// Proves the properties scripts/lint.sh depends on:
//   1. the real tree is clean (lint exits 0) under all 15 rules,
//   2. the linter is *sensitive*: each deliberately broken fixture in
//      tests/lint_fixtures/, linted as if it lived at its pretend src/
//      path, makes lint exit non-zero with the expected rule id -- i.e.
//      flipping any fixture into the tree would fail the lint gate. This
//      covers the whole-program analyses (layer-dag, lock-order,
//      blocking-under-lock, hot-path) as well as the per-file rules,
//   3. the include-graph pass reports the *exact* defect edges on a
//      synthetic tree with a known cycle and a known back-edge, and
//   4. --json output obeys the schema documented in
//      docs/STATIC_ANALYSIS.md.
// The suppression fixture additionally proves that a justified
// NOLINT(sfq-*) silences a rule without disabling it globally.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

const char kRoot[] = SFQ_SOURCE_DIR;

struct RunResult {
  int exit_code;
  std::string output;
};

// Runs a command, capturing combined stdout+stderr and the exit code.
RunResult Exec(const std::string& cmd) {
  RunResult result{-1, {}};
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string LintCmd(const std::string& args) {
  return std::string("python3 '") + kRoot + "/tools/sfq_lint.py' --root '" +
         kRoot + "' " + args;
}

// Parses the `sfq-lint-path:` / `sfq-lint-expect:` header comments.
struct Fixture {
  fs::path file;
  std::string pretend_path;
  std::vector<std::string> expected_rules;
};

std::vector<Fixture> LoadFixtures() {
  std::vector<Fixture> fixtures;
  const fs::path dir = fs::path(kRoot) / "tests" / "lint_fixtures";
  const std::regex path_re(R"(sfq-lint-path:\s*(\S+))");
  const std::regex expect_re(R"(sfq-lint-expect:\s*([\w-]+))");
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Fixture f;
    f.file = entry.path();
    std::smatch m;
    if (std::regex_search(text, m, path_re)) f.pretend_path = m[1];
    for (auto it = std::sregex_iterator(text.begin(), text.end(), expect_re);
         it != std::sregex_iterator(); ++it) {
      f.expected_rules.push_back((*it)[1]);
    }
    fixtures.push_back(std::move(f));
  }
  return fixtures;
}

TEST(LintSelfcheck, RealTreeIsClean) {
  const RunResult r = Exec(LintCmd(""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("sfq-lint: OK"), std::string::npos) << r.output;
}

TEST(LintSelfcheck, FixtureExpectationsAllHold) {
  // --fixtures asserts, inside the linter, that every fixture fires exactly
  // its declared rules (including the silent suppression fixture).
  const RunResult r =
      Exec(LintCmd("--fixtures '" + std::string(kRoot) + "/tests/lint_fixtures'"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("fixture FAIL"), std::string::npos) << r.output;
}

TEST(LintSelfcheck, EachBrokenFixtureFailsAsTreeSource) {
  const std::vector<Fixture> fixtures = LoadFixtures();
  ASSERT_GE(fixtures.size(), 12u);  // 11+ broken + 1 suppressed control
  int broken = 0;
  for (const Fixture& f : fixtures) {
    ASSERT_FALSE(f.pretend_path.empty()) << f.file;
    const RunResult r = Exec(LintCmd("--check-file '" + f.file.string() +
                                    "' --as " + f.pretend_path));
    if (f.expected_rules.empty()) {
      // The suppression control: must stay silent even as tree source.
      EXPECT_EQ(r.exit_code, 0) << f.file << "\n" << r.output;
      continue;
    }
    ++broken;
    EXPECT_NE(r.exit_code, 0)
        << f.file << " should fail lint as " << f.pretend_path;
    for (const std::string& rule : f.expected_rules) {
      EXPECT_NE(r.output.find("[sfq-" + rule + "]"), std::string::npos)
          << f.file << " expected rule " << rule << "\n"
          << r.output;
    }
  }
  EXPECT_GE(broken, 11);
}

TEST(LintSelfcheck, ListRulesMatchesDocumentedSet) {
  const RunResult r = Exec(LintCmd("--list-rules"));
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"sfq-row-seed", "sfq-raw-geometry", "sfq-nondet-random",
        "sfq-dropped-status", "sfq-raw-mutex", "sfq-unguarded-member",
        "sfq-concurrent-label", "sfq-nodiscard-decl", "sfq-failpoint-site",
        "sfq-server-opcode", "sfq-simd-ifdef", "sfq-layer-dag",
        "sfq-lock-order", "sfq-blocking-under-lock", "sfq-hot-path"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

// The include-graph fixture tree contains exactly one include cycle
// (util/a.h <-> util/b.h) and one layer back-edge (core/low.h ->
// server/high.h). The pass must report both with the precise edge path,
// not merely "something is wrong".
TEST(LintSelfcheck, IncludeGraphReportsExactCycleAndBackEdge) {
  const RunResult r = Exec(LintCmd(
      "--include-graph-root '" + std::string(kRoot) +
      "/tests/lint_fixtures/include_cycle_tree'"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(
                "src/core/low.h:5: [sfq-layer-dag] include of "
                "\"server/high.h\" is a layer back-edge: core -> server"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("include cycle: src/util/a.h -> src/util/b.h -> "
                          "src/util/a.h"),
            std::string::npos)
      << r.output;
  // Exactly the two planted defects, nothing else.
  EXPECT_NE(r.output.find("sfq-lint: 2 finding(s)"), std::string::npos)
      << r.output;
}

// --json emits one object per line with exactly the documented keys:
// path (string), line (number), rule ("sfq-" id), message (string).
TEST(LintSelfcheck, JsonOutputMatchesDocumentedSchema) {
  const RunResult r = Exec(LintCmd(
      "--json --check-file '" + std::string(kRoot) +
      "/tests/lint_fixtures/lock_order_cycle.cc' --as "
      "src/server/lock_cycle_probe.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  ASSERT_FALSE(r.output.empty());
  const std::regex schema_re(
      R"(^\{"path": "[^"]+", "line": [0-9]+, "rule": "sfq-[a-z-]+", )"
      R"("message": ".*"\}$)");
  std::istringstream lines(r.output);
  std::string line;
  int objects = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++objects;
    EXPECT_TRUE(std::regex_match(line, schema_re)) << line;
    EXPECT_NE(line.find("\"rule\": \"sfq-lock-order\""), std::string::npos)
        << line;
  }
  EXPECT_GE(objects, 1);
}

// On a clean tree --json prints nothing at all (no summary line), so CI
// annotation consumers can treat every output line as a finding object.
TEST(LintSelfcheck, JsonOutputSilentWhenClean) {
  const RunResult r = Exec(LintCmd(
      "--json --check-file '" + std::string(kRoot) +
      "/tests/lint_fixtures/suppressed_ok.h' --as "
      "src/concurrent/suppressed_counter.h"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

}  // namespace
