// Self-check for the sfq-lint static checker (tools/sfq_lint.py).
//
// Proves the two properties scripts/lint.sh depends on:
//   1. the real tree is clean (lint exits 0), and
//   2. the linter is *sensitive*: each deliberately broken fixture in
//      tests/lint_fixtures/, linted as if it lived at its pretend src/
//      path, makes lint exit non-zero with the expected rule id -- i.e.
//      flipping any fixture into the tree would fail the lint gate.
// The suppression fixture additionally proves that a justified
// NOLINT(sfq-*) silences a rule without disabling it globally.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

const char kRoot[] = SFQ_SOURCE_DIR;

struct RunResult {
  int exit_code;
  std::string output;
};

// Runs a command, capturing combined stdout+stderr and the exit code.
RunResult Exec(const std::string& cmd) {
  RunResult result{-1, {}};
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string LintCmd(const std::string& args) {
  return std::string("python3 '") + kRoot + "/tools/sfq_lint.py' --root '" +
         kRoot + "' " + args;
}

// Parses the `sfq-lint-path:` / `sfq-lint-expect:` header comments.
struct Fixture {
  fs::path file;
  std::string pretend_path;
  std::vector<std::string> expected_rules;
};

std::vector<Fixture> LoadFixtures() {
  std::vector<Fixture> fixtures;
  const fs::path dir = fs::path(kRoot) / "tests" / "lint_fixtures";
  const std::regex path_re(R"(sfq-lint-path:\s*(\S+))");
  const std::regex expect_re(R"(sfq-lint-expect:\s*([\w-]+))");
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Fixture f;
    f.file = entry.path();
    std::smatch m;
    if (std::regex_search(text, m, path_re)) f.pretend_path = m[1];
    for (auto it = std::sregex_iterator(text.begin(), text.end(), expect_re);
         it != std::sregex_iterator(); ++it) {
      f.expected_rules.push_back((*it)[1]);
    }
    fixtures.push_back(std::move(f));
  }
  return fixtures;
}

TEST(LintSelfcheck, RealTreeIsClean) {
  const RunResult r = Exec(LintCmd(""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("sfq-lint: OK"), std::string::npos) << r.output;
}

TEST(LintSelfcheck, FixtureExpectationsAllHold) {
  // --fixtures asserts, inside the linter, that every fixture fires exactly
  // its declared rules (including the silent suppression fixture).
  const RunResult r =
      Exec(LintCmd("--fixtures '" + std::string(kRoot) + "/tests/lint_fixtures'"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("fixture FAIL"), std::string::npos) << r.output;
}

TEST(LintSelfcheck, EachBrokenFixtureFailsAsTreeSource) {
  const std::vector<Fixture> fixtures = LoadFixtures();
  ASSERT_GE(fixtures.size(), 8u);  // 7 broken + 1 suppressed control
  int broken = 0;
  for (const Fixture& f : fixtures) {
    ASSERT_FALSE(f.pretend_path.empty()) << f.file;
    const RunResult r = Exec(LintCmd("--check-file '" + f.file.string() +
                                    "' --as " + f.pretend_path));
    if (f.expected_rules.empty()) {
      // The suppression control: must stay silent even as tree source.
      EXPECT_EQ(r.exit_code, 0) << f.file << "\n" << r.output;
      continue;
    }
    ++broken;
    EXPECT_NE(r.exit_code, 0)
        << f.file << " should fail lint as " << f.pretend_path;
    for (const std::string& rule : f.expected_rules) {
      EXPECT_NE(r.output.find("[sfq-" + rule + "]"), std::string::npos)
          << f.file << " expected rule " << rule << "\n"
          << r.output;
    }
  }
  EXPECT_GE(broken, 7);
}

TEST(LintSelfcheck, ListRulesMatchesDocumentedSet) {
  const RunResult r = Exec(LintCmd("--list-rules"));
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"sfq-row-seed", "sfq-raw-geometry", "sfq-nondet-random",
        "sfq-dropped-status", "sfq-raw-mutex", "sfq-unguarded-member",
        "sfq-concurrent-label", "sfq-nodiscard-decl", "sfq-failpoint-site"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
