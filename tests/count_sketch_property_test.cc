// Property-style sweeps over Count-Sketch parameters: the paper's error
// bound (Lemma 3-5), variance scaling (Lemma 1-2), and sketch linearity,
// checked across widths, depths, skews, and hash families.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/count_sketch.h"
#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

struct SketchCase {
  size_t depth;
  size_t width;
  double z;
  HashFamily family;
};

std::string CaseName(const ::testing::TestParamInfo<SketchCase>& info) {
  const auto& c = info.param;
  const char* fam = c.family == HashFamily::kCarterWegman    ? "CW"
                    : c.family == HashFamily::kMultiplyShift ? "MS"
                                                             : "TAB";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "d%zu_b%zu_z%dp%02d_%s", c.depth, c.width,
                static_cast<int>(c.z),
                static_cast<int>(c.z * 100) % 100, fam);
  return buf;
}

class CountSketchPropertyTest : public ::testing::TestWithParam<SketchCase> {
 protected:
  static constexpr uint64_t kUniverse = 2000;
  static constexpr uint64_t kStreamLen = 100000;
  static constexpr size_t kK = 20;
};

// Paper Lemma 3-4: for the top-k items, |estimate - truth| <= 8 * gamma
// with gamma = sqrt(F2^{>k} / b), with probability 1 - delta. We check all
// top-k items and allow one failure out of k to keep flake probability
// negligible while still rejecting broken implementations.
TEST_P(CountSketchPropertyTest, ErrorWithinEightGammaForTopK) {
  const SketchCase& c = GetParam();
  auto gen = ZipfGenerator::Make(kUniverse, c.z, 1234);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(kStreamLen);
  ExactCounter oracle;
  oracle.AddAll(stream);

  CountSketchParams p;
  p.depth = c.depth;
  p.width = c.width;
  p.seed = 987;
  p.family = c.family;
  auto sketch = CountSketch::Make(p);
  ASSERT_TRUE(sketch.ok());
  for (ItemId q : stream) sketch->Add(q);

  const double gamma = oracle.Gamma(kK, c.width);
  size_t violations = 0;
  for (const ItemCount& ic : oracle.TopK(kK)) {
    const double err = std::abs(
        static_cast<double>(sketch->Estimate(ic.item) - ic.count));
    if (err > 8.0 * gamma + 1.0) ++violations;  // +1 absorbs median rounding
  }
  EXPECT_LE(violations, 1u) << "gamma=" << gamma;
}

// Linearity: sketching S1 then S2 equals merging independent sketches, and
// subtracting recovers the delta sketch, for every parameterization.
TEST_P(CountSketchPropertyTest, LinearityHolds) {
  const SketchCase& c = GetParam();
  CountSketchParams p;
  p.depth = c.depth;
  p.width = c.width;
  p.seed = 55;
  p.family = c.family;

  auto gen = ZipfGenerator::Make(500, c.z, 8);
  ASSERT_TRUE(gen.ok());
  const Stream s1 = gen->Take(5000);
  const Stream s2 = gen->Take(5000);

  auto a = CountSketch::Make(p);
  auto b = CountSketch::Make(p);
  auto both = CountSketch::Make(p);
  ASSERT_TRUE(a.ok() && b.ok() && both.ok());
  for (ItemId q : s1) {
    a->Add(q);
    both->Add(q);
  }
  for (ItemId q : s2) {
    b->Add(q);
    both->Add(q);
  }
  ASSERT_TRUE(a->Merge(*b).ok());
  for (size_t row = 0; row < p.depth; ++row) {
    for (size_t col = 0; col < p.width; col += 7) {
      ASSERT_EQ(a->CounterAt(row, col), both->CounterAt(row, col));
    }
  }
  // Subtract b back out: a - b == sketch(s1).
  ASSERT_TRUE(a->Subtract(*b).ok());
  auto only_s1 = CountSketch::Make(p);
  ASSERT_TRUE(only_s1.ok());
  for (ItemId q : s1) only_s1->Add(q);
  for (size_t row = 0; row < p.depth; ++row) {
    for (size_t col = 0; col < p.width; col += 7) {
      ASSERT_EQ(a->CounterAt(row, col), only_s1->CounterAt(row, col));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountSketchPropertyTest,
    ::testing::Values(
        SketchCase{3, 256, 1.0, HashFamily::kCarterWegman},
        SketchCase{5, 256, 1.0, HashFamily::kCarterWegman},
        SketchCase{7, 1024, 1.0, HashFamily::kCarterWegman},
        SketchCase{5, 1024, 0.5, HashFamily::kCarterWegman},
        SketchCase{5, 1024, 1.5, HashFamily::kCarterWegman},
        SketchCase{5, 4096, 0.8, HashFamily::kCarterWegman},
        SketchCase{5, 1024, 1.0, HashFamily::kMultiplyShift},
        SketchCase{5, 1024, 1.0, HashFamily::kTabulation},
        SketchCase{4, 512, 1.2, HashFamily::kCarterWegman},
        SketchCase{6, 2048, 0.7, HashFamily::kTabulation}),
    CaseName);

// Variance scaling (Lemma 1-2): quadrupling b should roughly halve the
// root-mean-square error of single-row estimates.
TEST(CountSketchVarianceTest, RmseHalvesWhenWidthQuadruples) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 77);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(100000);
  ExactCounter oracle;
  oracle.AddAll(stream);

  auto rmse_at_width = [&](size_t width) {
    double se = 0.0;
    int samples = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      CountSketchParams p;
      p.depth = 1;
      p.width = width;
      p.seed = seed * 7919;
      auto s = CountSketch::Make(p);
      EXPECT_TRUE(s.ok());
      for (ItemId q : stream) s->Add(q);
      for (uint64_t rank = 30; rank < 50; ++rank) {
        const ItemId item = gen->IdForRank(rank);
        const double err = static_cast<double>(
            s->RowEstimates(item)[0] - oracle.CountOf(item));
        se += err * err;
        ++samples;
      }
    }
    return std::sqrt(se / samples);
  };

  const double rmse_small = rmse_at_width(128);
  const double rmse_large = rmse_at_width(512);
  EXPECT_LT(rmse_large, rmse_small * 0.75)
      << "variance must fall with width (got " << rmse_small << " -> "
      << rmse_large << ")";
}

// Depth concentration (Lemma 3): deeper sketches fail less often at fixed
// width. Count how many of the top items deviate past 8*gamma.
TEST(CountSketchDepthTest, FailuresDropWithDepth) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 99);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(100000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  constexpr size_t kWidth = 64;  // deliberately narrow: errors are common
  const double threshold = 2.0 * oracle.Gamma(0, kWidth);

  auto violation_rate = [&](size_t depth) {
    int violations = 0, total = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      CountSketchParams p;
      p.depth = depth;
      p.width = kWidth;
      p.seed = seed * 104729;
      auto s = CountSketch::Make(p);
      EXPECT_TRUE(s.ok());
      for (ItemId q : stream) s->Add(q);
      for (uint64_t rank = 1; rank <= 100; ++rank) {
        const ItemId item = gen->IdForRank(rank);
        const double err = std::abs(static_cast<double>(
            s->Estimate(item) - oracle.CountOf(item)));
        violations += err > threshold;
        ++total;
      }
    }
    return static_cast<double>(violations) / total;
  };

  const double shallow = violation_rate(1);
  const double deep = violation_rate(9);
  EXPECT_LT(deep, shallow * 0.7)
      << "median over more rows must concentrate (got " << shallow << " -> "
      << deep << ")";
}

}  // namespace
}  // namespace streamfreq
