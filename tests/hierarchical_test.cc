#include "core/hierarchical.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/random.h"
#include "stream/exact_counter.h"

namespace streamfreq {
namespace {

HierarchicalParams SmallParams() {
  HierarchicalParams p;
  p.bits = 16;
  p.depth = 5;
  p.width = 512;
  p.seed = 5;
  return p;
}

TEST(HierarchicalTest, RejectsBadParams) {
  HierarchicalParams p = SmallParams();
  p.bits = 0;
  EXPECT_TRUE(HierarchicalCountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.bits = 41;
  EXPECT_TRUE(HierarchicalCountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.width = 0;
  EXPECT_TRUE(HierarchicalCountSketch::Make(p).status().IsInvalidArgument());
}

TEST(HierarchicalTest, PointEstimateSingleKeyExact) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  h->Add(1234, 50);
  EXPECT_EQ(h->EstimatePoint(1234), 50);
  EXPECT_EQ(h->TotalWeight(), 50);
}

TEST(HierarchicalTest, RangeQueriesMatchExactOnSparseData) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  // A handful of keys: few collisions, estimates near-exact.
  h->Add(10, 5);
  h->Add(100, 7);
  h->Add(1000, 11);
  h->Add(65535, 3);

  auto expect_range = [&](uint64_t lo, uint64_t hi, Count want) {
    auto got = h->EstimateRange(lo, hi);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, want) << "[" << lo << ", " << hi << "]";
  };
  expect_range(0, 65535, 26);       // whole domain: exact via total
  expect_range(10, 10, 5);          // single key
  expect_range(0, 99, 5);           // [0,100)
  expect_range(0, 100, 12);
  expect_range(11, 999, 7);
  expect_range(101, 65535, 14);
  expect_range(20000, 60000, 0);    // empty range
}

TEST(HierarchicalTest, RangeErrors) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->EstimateRange(5, 4).status().IsInvalidArgument());
  EXPECT_TRUE(h->EstimateRange(0, 1 << 16).status().IsOutOfRange());
}

TEST(HierarchicalTest, HeavyHittersRecoveredWithoutTracking) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(3);
  // Background noise: 20k light keys.
  for (int i = 0; i < 20000; ++i) h->Add(rng.UniformBelow(1 << 16));
  // Five planted heavy keys.
  const uint64_t heavy[] = {7, 4242, 30000, 55555, 65000};
  for (uint64_t k : heavy) h->Add(k, 2000);

  const auto hits = h->HeavyHitters(1000);
  std::unordered_set<uint64_t> found;
  for (const HeavyHitter& hh : hits) found.insert(hh.key);
  for (uint64_t k : heavy) {
    EXPECT_TRUE(found.count(k)) << "missed heavy key " << k;
  }
  // No wild false positives: every reported key must be genuinely heavy-ish.
  for (const HeavyHitter& hh : hits) {
    EXPECT_GE(hh.estimate, 1000);
  }
}

TEST(HierarchicalTest, TurnstileHeavyHitterOfDifference) {
  // The capability the heap tracker cannot provide: find heavy *deltas*
  // from subtracted sketches, one pass per stream, no second pass.
  HierarchicalParams p = SmallParams();
  auto s1 = HierarchicalCountSketch::Make(p);
  auto s2 = HierarchicalCountSketch::Make(p);
  ASSERT_TRUE(s1.ok() && s2.ok());

  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.UniformBelow(1 << 16);
    s1->Add(k);
    s2->Add(k);  // identical background
  }
  // Riser and faller live in different level-1 subtrees: a positive and a
  // negative delta under a shared ancestor would cancel in its estimate
  // and prune the descent (documented HeavyHitters caveat).
  s2->Add(31337, 3000);  // the riser (< 2^15 subtree)
  s1->Add(50000, 2500);  // the faller (>= 2^15 subtree)

  ASSERT_TRUE(s2->Subtract(*s1).ok());
  const auto hits = s2->HeavyHitters(1500);
  ASSERT_GE(hits.size(), 2u);
  std::unordered_set<uint64_t> found;
  for (const HeavyHitter& hh : hits) found.insert(hh.key);
  EXPECT_TRUE(found.count(31337));
  EXPECT_TRUE(found.count(50000));
  for (const HeavyHitter& hh : hits) {
    if (hh.key == 31337) {
      EXPECT_GT(hh.estimate, 0);
    }
    if (hh.key == 50000) {
      EXPECT_LT(hh.estimate, 0);
    }
  }
}

TEST(HierarchicalTest, KeyAtRankFindsMedianOnSkewedData) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  // 1000 copies of key 100, 1000 of key 200, 1000 of key 300.
  h->Add(100, 1000);
  h->Add(200, 1000);
  h->Add(300, 1000);
  EXPECT_EQ(h->KeyAtRank(500), 100u);
  EXPECT_EQ(h->KeyAtRank(1500), 200u);
  EXPECT_EQ(h->KeyAtRank(2500), 300u);
}

TEST(HierarchicalTest, QuantilesApproximateOnUniformData) {
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(11);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) h->Add(rng.UniformBelow(1 << 16));
  // Median of U[0, 65536) should land near 32768 (within ~10%).
  const uint64_t median = h->KeyAtRank(kN / 2);
  EXPECT_NEAR(static_cast<double>(median), 32768.0, 6500.0);
  const uint64_t p90 = h->KeyAtRank(kN * 9 / 10);
  EXPECT_NEAR(static_cast<double>(p90), 58982.0, 6500.0);
}

TEST(HierarchicalTest, MergeMatchesUnion) {
  auto a = HierarchicalCountSketch::Make(SmallParams());
  auto b = HierarchicalCountSketch::Make(SmallParams());
  auto both = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok() && both.ok());
  a->Add(5, 10);
  both->Add(5, 10);
  b->Add(9, 20);
  both->Add(9, 20);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->TotalWeight(), both->TotalWeight());
  EXPECT_EQ(a->EstimatePoint(5), both->EstimatePoint(5));
  EXPECT_EQ(a->EstimatePoint(9), both->EstimatePoint(9));
}

TEST(HierarchicalTest, IncompatibleMergeRejected) {
  auto a = HierarchicalCountSketch::Make(SmallParams());
  HierarchicalParams p = SmallParams();
  p.seed = 6;
  auto b = HierarchicalCountSketch::Make(p);
  p = SmallParams();
  p.bits = 12;
  auto c = HierarchicalCountSketch::Make(p);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
  EXPECT_TRUE(a->Merge(*c).IsInvalidArgument());
}

TEST(HierarchicalTest, NarrowLevelsClampWidth) {
  // bits=16 with width 512: level 1 has 2 prefixes, so its sketch width
  // must be clamped; space must be far below bits * full-width.
  auto h = HierarchicalCountSketch::Make(SmallParams());
  ASSERT_TRUE(h.ok());
  const size_t full = 16 * 5 * 512 * sizeof(int64_t);
  EXPECT_LT(h->SpaceBytes(), full);
}

}  // namespace
}  // namespace streamfreq
