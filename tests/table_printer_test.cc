#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace streamfreq {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos) << out;
}

TEST(TablePrinterTest, FormatsDoublesCompactly) {
  EXPECT_EQ(TablePrinter::Format(1.0), "1");
  EXPECT_EQ(TablePrinter::Format(0.5), "0.5");
  EXPECT_EQ(TablePrinter::Format(123456.0), "1.235e+05");
  EXPECT_EQ(TablePrinter::Format(std::string("s")), "s");
  EXPECT_EQ(TablePrinter::Format(42), "42");
}

TEST(TablePrinterTest, AddRowValuesFormats) {
  TablePrinter t({"a", "b", "c"});
  t.AddRowValues("x", 3, 2.5);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,3,2.5\n");
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter t({"k"});
  t.AddRow({"a,b"});
  t.AddRow({"quote\"inside"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "k\n\"a,b\"\n\"quote\"\"inside\"\n");
}

TEST(TablePrinterTest, WriteCsvCreatesFile) {
  TablePrinter t({"h"});
  t.AddRow({"v"});
  const std::string path = ::testing::TempDir() + "/sfq_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "h\nv\n");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, WriteCsvBadPathFails) {
  TablePrinter t({"h"});
  EXPECT_TRUE(t.WriteCsv("/nonexistent-dir-xyz/file.csv").IsIoError());
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width mismatch");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace streamfreq
