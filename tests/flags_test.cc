#include "util/flags.h"

#include <gtest/gtest.h>

namespace streamfreq {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return *flags;
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = MustParse({"--name=value", "--n=42"});
  EXPECT_EQ(f.GetString("name", ""), "value");
  EXPECT_EQ(*f.GetInt("n", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = MustParse({"--name", "value", "--n", "42"});
  EXPECT_EQ(f.GetString("name", ""), "value");
  EXPECT_EQ(*f.GetInt("n", 0), 42);
}

TEST(FlagsTest, SingleDashAccepted) {
  const Flags f = MustParse({"-k", "7"});
  EXPECT_EQ(*f.GetInt("k", 0), 7);
}

TEST(FlagsTest, BareBooleanAndExplicitValues) {
  const Flags f = MustParse({"--verbose", "--color=false", "--force=yes"});
  EXPECT_TRUE(*f.GetBool("verbose", false));
  EXPECT_FALSE(*f.GetBool("color", true));
  EXPECT_TRUE(*f.GetBool("force", false));
  EXPECT_TRUE(*f.GetBool("absent", true));
  EXPECT_FALSE(*f.GetBool("absent2", false));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = MustParse({"topk", "--k", "5", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "topk");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  const Flags f = MustParse({"--k", "5", "--", "--not-a-flag"});
  EXPECT_EQ(*f.GetInt("k", 0), 5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, Defaults) {
  const Flags f = MustParse({});
  EXPECT_EQ(f.GetString("missing", "d"), "d");
  EXPECT_EQ(*f.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(*f.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, TypeErrors) {
  const Flags f = MustParse({"--n=abc", "--x=1.2.3", "--b=maybe"});
  EXPECT_TRUE(f.GetInt("n", 0).status().IsInvalidArgument());
  EXPECT_TRUE(f.GetDouble("x", 0).status().IsInvalidArgument());
  EXPECT_TRUE(f.GetBool("b", false).status().IsInvalidArgument());
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = MustParse({"--z=1.25", "--neg=-0.5"});
  EXPECT_DOUBLE_EQ(*f.GetDouble("z", 0), 1.25);
  EXPECT_DOUBLE_EQ(*f.GetDouble("neg", 0), -0.5);
}

TEST(FlagsTest, NegativeIntegerValueViaEquals) {
  const Flags f = MustParse({"--n=-5"});
  EXPECT_EQ(*f.GetInt("n", 0), -5);
}

TEST(FlagsTest, MalformedFlagRejected) {
  std::vector<const char*> argv = {"prog", "--=x"};
  EXPECT_TRUE(Flags::Parse(2, argv.data()).status().IsInvalidArgument());
  std::vector<const char*> argv2 = {"prog", "---triple"};
  EXPECT_TRUE(Flags::Parse(2, argv2.data()).status().IsInvalidArgument());
}

TEST(FlagsTest, HasAndNames) {
  const Flags f = MustParse({"--a=1", "--b"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_TRUE(f.Has("b"));
  EXPECT_FALSE(f.Has("c"));
  EXPECT_EQ(f.Names().size(), 2u);
}

}  // namespace
}  // namespace streamfreq
