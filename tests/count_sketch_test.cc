#include "core/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

CountSketchParams SmallParams() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 128;
  p.seed = 42;
  return p;
}

TEST(CountSketchTest, RejectsBadParams) {
  CountSketchParams p = SmallParams();
  p.depth = 0;
  EXPECT_TRUE(CountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.width = 0;
  EXPECT_TRUE(CountSketch::Make(p).status().IsInvalidArgument());
  p = SmallParams();
  p.depth = 1u << 21;
  EXPECT_TRUE(CountSketch::Make(p).status().IsInvalidArgument());
}

TEST(CountSketchTest, EmptySketchEstimatesZero) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Estimate(123), 0);
}

TEST(CountSketchTest, SingleItemIsExact) {
  // With one item there are no collisions: every row estimate is exact.
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(7, 10);
  s->Add(7, 5);
  EXPECT_EQ(s->Estimate(7), 15);
  for (Count row : s->RowEstimates(7)) EXPECT_EQ(row, 15);
}

TEST(CountSketchTest, NegationIsSymmetric) {
  auto s = CountSketch::Make(SmallParams());
  auto neg = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok() && neg.ok());
  for (ItemId q = 1; q <= 50; ++q) {
    s->Add(q, static_cast<Count>(q));
    neg->Add(q, -static_cast<Count>(q));
  }
  for (ItemId q = 1; q <= 50; ++q) {
    EXPECT_EQ(s->Estimate(q), -neg->Estimate(q)) << "item " << q;
  }
}

TEST(CountSketchTest, TurnstileDeleteRestoresZero) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(1, 100);
  s->Add(2, 50);
  s->Add(1, -100);
  s->Add(2, -50);
  // All counters are exactly zero again, so every estimate is zero.
  EXPECT_EQ(s->Estimate(1), 0);
  EXPECT_EQ(s->Estimate(2), 0);
  EXPECT_EQ(s->Estimate(999), 0);
}

TEST(CountSketchTest, ClearZeroesCounters) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(3, 1000);
  s->Clear();
  EXPECT_EQ(s->Estimate(3), 0);
}

TEST(CountSketchTest, MergeEqualsUnionStream) {
  auto a = CountSketch::Make(SmallParams());
  auto b = CountSketch::Make(SmallParams());
  auto combined = CountSketch::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok() && combined.ok());
  for (ItemId q = 1; q <= 200; ++q) {
    a->Add(q, 3);
    combined->Add(q, 3);
  }
  for (ItemId q = 100; q <= 300; ++q) {
    b->Add(q, 7);
    combined->Add(q, 7);
  }
  ASSERT_TRUE(a->Merge(*b).ok());
  // Linearity: the merged sketch is bitwise the sketch of the union.
  for (ItemId q = 1; q <= 300; ++q) {
    EXPECT_EQ(a->Estimate(q), combined->Estimate(q)) << "item " << q;
  }
}

TEST(CountSketchTest, SubtractYieldsDifferenceEstimates) {
  auto s1 = CountSketch::Make(SmallParams());
  auto s2 = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s1.ok() && s2.ok());
  s1->Add(10, 100);
  s1->Add(11, 40);
  s2->Add(10, 60);
  s2->Add(12, 90);
  ASSERT_TRUE(s2->Subtract(*s1).ok());
  // Only three items touched 3 rows of 128 buckets: collisions are
  // unlikely; difference estimates should be near-exact.
  EXPECT_EQ(s2->Estimate(10), -40);
  EXPECT_EQ(s2->Estimate(11), -40);
  EXPECT_EQ(s2->Estimate(12), 90);
}

TEST(CountSketchTest, IncompatibleSketchesRefuseToMerge) {
  CountSketchParams p = SmallParams();
  auto a = CountSketch::Make(p);
  p.seed = 43;
  auto b = CountSketch::Make(p);
  p = SmallParams();
  p.width = 64;
  auto c = CountSketch::Make(p);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(a->CompatibleWith(*b));
  EXPECT_TRUE(a->Merge(*b).IsInvalidArgument());
  EXPECT_TRUE(a->Merge(*c).IsInvalidArgument());
  EXPECT_TRUE(a->Subtract(*b).IsInvalidArgument());
}

TEST(CountSketchTest, SameSeedSketchesAreIdentical) {
  auto a = CountSketch::Make(SmallParams());
  auto b = CountSketch::Make(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->CompatibleWith(*b));
  a->Add(5, 10);
  b->Add(5, 10);
  for (size_t row = 0; row < a->depth(); ++row) {
    for (size_t col = 0; col < a->width(); ++col) {
      EXPECT_EQ(a->CounterAt(row, col), b->CounterAt(row, col));
    }
  }
}

TEST(CountSketchTest, SerializeRoundTrip) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  for (ItemId q = 1; q <= 500; ++q) s->Add(q, static_cast<Count>(q % 17));
  std::string buf;
  s->SerializeTo(&buf);
  auto loaded = CountSketch::Deserialize(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->CompatibleWith(*s));
  for (ItemId q = 1; q <= 500; ++q) {
    EXPECT_EQ(loaded->Estimate(q), s->Estimate(q));
  }
}

TEST(CountSketchTest, DeserializeRejectsCorruption) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  std::string buf;
  s->SerializeTo(&buf);

  EXPECT_TRUE(CountSketch::Deserialize("").status().IsCorruption());
  EXPECT_TRUE(CountSketch::Deserialize(buf.substr(0, 16)).status().IsCorruption());
  EXPECT_TRUE(CountSketch::Deserialize(buf.substr(0, buf.size() - 8))
                  .status()
                  .IsCorruption());
  std::string bad_magic = buf;
  bad_magic[0] ^= 0x5A;
  EXPECT_TRUE(CountSketch::Deserialize(bad_magic).status().IsCorruption());
}

TEST(CountSketchTest, MedianIsRobustToOneHeavyCollision) {
  // Plant a heavy item and measure a light one; with depth 5 the median
  // survives even if the heavy item collides in some rows.
  CountSketchParams p = SmallParams();
  p.width = 8;  // force frequent collisions
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  s->Add(1, 100000);
  s->Add(2, 10);
  const Count est = s->Estimate(2);
  // The estimate may be off by collisions with the single heavy item in a
  // minority of rows, but the median cannot be dragged to 100000 unless
  // the heavy item collides in >= 3 of 5 rows (prob ~ (1/8)^3 scale).
  EXPECT_LT(std::abs(est - 10), 100000 / 2) << "median destroyed by one outlier";
}

TEST(CountSketchTest, MeanEstimatorWorksButIsFragile) {
  CountSketchParams p = SmallParams();
  p.estimator = Estimator::kMean;
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  s->Add(9, 50);
  EXPECT_EQ(s->Estimate(9), 50) << "no collisions: mean is exact too";
}

TEST(CountSketchTest, AllFamiliesEstimateSingleItemExactly) {
  for (HashFamily family :
       {HashFamily::kCarterWegman, HashFamily::kMultiplyShift,
        HashFamily::kTabulation}) {
    CountSketchParams p = SmallParams();
    p.family = family;
    auto s = CountSketch::Make(p);
    ASSERT_TRUE(s.ok());
    s->Add(77, 1234);
    EXPECT_EQ(s->Estimate(77), 1234)
        << "family " << static_cast<int>(family);
  }
}

TEST(CountSketchTest, DepthOneAndWidthOneDegenerate) {
  CountSketchParams p;
  p.depth = 1;
  p.width = 1;
  p.seed = 1;
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  s->Add(1, 5);
  // Everything lands in the single counter; estimate is +/-5 depending on
  // the item's sign, and self-estimate is exactly 5.
  EXPECT_EQ(s->Estimate(1), 5);
}

TEST(CountSketchTest, EvenDepthMedianAveragesMiddles) {
  CountSketchParams p = SmallParams();
  p.depth = 4;
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  s->Add(3, 21);
  EXPECT_EQ(s->Estimate(3), 21);
}

TEST(CountSketchTest, SpaceBytesScalesWithDimensions) {
  CountSketchParams p = SmallParams();
  auto small = CountSketch::Make(p);
  p.width *= 2;
  auto big = CountSketch::Make(p);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_GT(big->SpaceBytes(), small->SpaceBytes());
  EXPECT_GE(small->SpaceBytes(),
            small->depth() * small->width() * sizeof(int64_t));
}

TEST(CountSketchTest, SpreadIntervalBracketsMedianAndCollapsesWhenExact) {
  auto s = CountSketch::Make(SmallParams());
  ASSERT_TRUE(s.ok());
  s->Add(7, 500);  // single item: every row agrees
  const auto exact = s->EstimateWithSpread(7);
  EXPECT_EQ(exact.estimate, 500);
  EXPECT_EQ(exact.lower, 500);
  EXPECT_EQ(exact.upper, 500);

  // Load the sketch heavily at a narrow width: the interval must widen and
  // still bracket the point estimate.
  CountSketchParams p = SmallParams();
  p.width = 16;
  auto noisy = CountSketch::Make(p);
  ASSERT_TRUE(noisy.ok());
  for (ItemId q = 1; q <= 2000; ++q) noisy->Add(q, static_cast<Count>(q % 50));
  const auto interval = noisy->EstimateWithSpread(1234);
  EXPECT_LE(interval.lower, interval.estimate);
  EXPECT_GE(interval.upper, interval.estimate);
  EXPECT_LT(interval.lower, interval.upper)
      << "a saturated 16-bucket sketch cannot have agreeing rows";
}

TEST(CountSketchTest, SpreadMatchesEstimateForOddDepth) {
  CountSketchParams p = SmallParams();
  p.depth = 7;
  auto s = CountSketch::Make(p);
  ASSERT_TRUE(s.ok());
  for (ItemId q = 1; q <= 300; ++q) s->Add(q, static_cast<Count>(q));
  for (ItemId q : {1ull, 50ull, 299ull}) {
    EXPECT_EQ(s->EstimateWithSpread(q).estimate, s->Estimate(q));
  }
}

TEST(CountSketchTest, EstimateUnbiasedOverSeeds) {
  // E[h_i[q] * s_i[q]] = n_q (Lemma 1 setup): average the row-0 estimate of
  // a fixed stream over many independent sketches.
  ExactCounter oracle;
  auto gen = ZipfGenerator::Make(500, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(20000);
  oracle.AddAll(stream);
  const ItemId target = gen->IdForRank(5);
  const Count truth = oracle.CountOf(target);

  double sum = 0.0;
  constexpr int kSeeds = 300;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    CountSketchParams p;
    p.depth = 1;
    p.width = 64;
    p.seed = static_cast<uint64_t>(seed) * 1000003;
    auto s = CountSketch::Make(p);
    ASSERT_TRUE(s.ok());
    for (ItemId q : stream) s->Add(q);
    sum += static_cast<double>(s->RowEstimates(target)[0]);
  }
  const double mean = sum / kSeeds;
  // Variance per estimate <= F2/width; stderr = sqrt(var/kSeeds).
  const double sigma = std::sqrt(oracle.ResidualF2(0) / 64.0 / kSeeds);
  EXPECT_NEAR(mean, static_cast<double>(truth), 6 * sigma);
}

}  // namespace
}  // namespace streamfreq
