#include "stream/flow_traffic.h"

#include <gtest/gtest.h>

#include "stream/exact_counter.h"

namespace streamfreq {
namespace {

TEST(FlowTrafficTest, RejectsBadSpecs) {
  FlowTrafficSpec spec;
  spec.pareto_alpha = 0.0;
  EXPECT_TRUE(FlowTrafficGenerator::Make(spec).status().IsInvalidArgument());

  spec = FlowTrafficSpec{};
  spec.min_flow_packets = 0;
  EXPECT_TRUE(FlowTrafficGenerator::Make(spec).status().IsInvalidArgument());

  spec = FlowTrafficSpec{};
  spec.max_flow_packets = 0;
  EXPECT_TRUE(FlowTrafficGenerator::Make(spec).status().IsInvalidArgument());

  spec = FlowTrafficSpec{};
  spec.concurrent_flows = 0;
  EXPECT_TRUE(FlowTrafficGenerator::Make(spec).status().IsInvalidArgument());
}

TEST(FlowTrafficTest, DeterministicPerSeed) {
  FlowTrafficSpec spec;
  spec.seed = 5;
  auto a = FlowTrafficGenerator::Make(spec);
  auto b = FlowTrafficGenerator::Make(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(a->Next(), b->Next());
}

TEST(FlowTrafficTest, ProducesHeavyTail) {
  FlowTrafficSpec spec;
  spec.pareto_alpha = 1.1;
  spec.concurrent_flows = 64;
  auto gen = FlowTrafficGenerator::Make(spec);
  ASSERT_TRUE(gen.ok());
  ExactCounter oracle;
  oracle.AddAll(gen->Take(300000));

  // Heavy tail: the biggest flow should dwarf the median flow.
  const auto sorted = oracle.SortedByCount();
  ASSERT_GT(sorted.size(), 100u);
  const Count top = sorted.front().count;
  const Count median = sorted[sorted.size() / 2].count;
  EXPECT_GT(top, 50 * median)
      << "Pareto(1.1) flows should include elephants (top=" << top
      << " median=" << median << ")";
}

TEST(FlowTrafficTest, RespectsFlowSizeCap) {
  FlowTrafficSpec spec;
  spec.pareto_alpha = 0.5;  // extremely heavy tail
  spec.max_flow_packets = 100;
  spec.concurrent_flows = 8;
  auto gen = FlowTrafficGenerator::Make(spec);
  ASSERT_TRUE(gen.ok());
  ExactCounter oracle;
  oracle.AddAll(gen->Take(100000));
  for (const auto& [id, count] : oracle.counts()) {
    EXPECT_LE(count, 100) << "flow exceeded the configured cap";
  }
}

TEST(FlowTrafficTest, DescribeMentionsAlpha) {
  auto gen = FlowTrafficGenerator::Make(FlowTrafficSpec{});
  ASSERT_TRUE(gen.ok());
  EXPECT_NE(gen->Describe().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace streamfreq
