#include "core/sharded_sketch.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stream/exact_counter.h"
#include "stream/zipf.h"
#include "verify/program.h"

namespace streamfreq {
namespace {

CountSketchParams DefaultParams() {
  CountSketchParams p;
  p.depth = 5;
  p.width = 1024;
  p.seed = 12;
  return p;
}

TEST(ShardedSketchTest, RejectsZeroShards) {
  EXPECT_TRUE(
      ShardedCountSketch::Make(DefaultParams(), 0).status().IsInvalidArgument());
}

TEST(ShardedSketchTest, CombineEqualsSequentialIngest) {
  auto gen = ZipfGenerator::Make(5000, 1.0, 21);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(40000);

  auto sharded = ShardedCountSketch::Make(DefaultParams(), 4);
  ASSERT_TRUE(sharded.ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    sharded->shard(i % 4).Add(stream[i]);
  }
  auto combined = sharded->Combine();
  ASSERT_TRUE(combined.ok());

  auto sequential = CountSketch::Make(DefaultParams());
  ASSERT_TRUE(sequential.ok());
  for (ItemId q : stream) sequential->Add(q);

  for (size_t row = 0; row < sequential->depth(); ++row) {
    for (size_t col = 0; col < sequential->width(); col += 3) {
      ASSERT_EQ(combined->CounterAt(row, col), sequential->CounterAt(row, col));
    }
  }
}

TEST(ShardedSketchTest, ConcurrentIngestMatchesGroundTruth) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50000;

  auto sharded = ShardedCountSketch::Make(DefaultParams(), kThreads);
  ASSERT_TRUE(sharded.ok());

  // Each thread streams its own deterministic Zipf slice into its shard.
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      auto gen = ZipfGenerator::Make(2000, 1.1, 100 + t);
      ASSERT_TRUE(gen.ok());
      CountSketch& shard = sharded->shard(t);
      for (size_t i = 0; i < kPerThread; ++i) shard.Add(gen->Next());
    });
  }
  for (auto& w : workers) w.join();

  // Ground truth from replaying the same slices single-threaded.
  ExactCounter oracle;
  for (size_t t = 0; t < kThreads; ++t) {
    auto gen = ZipfGenerator::Make(2000, 1.1, 100 + t);
    ASSERT_TRUE(gen.ok());
    for (size_t i = 0; i < kPerThread; ++i) oracle.Add(gen->Next());
  }

  auto combined = sharded->Combine();
  ASSERT_TRUE(combined.ok());
  for (const ItemCount& ic : oracle.TopK(10)) {
    const double err = std::abs(
        static_cast<double>(combined->Estimate(ic.item) - ic.count));
    EXPECT_LT(err, 0.05 * static_cast<double>(ic.count) + 50.0)
        << "item " << ic.item;
  }
}

// Metamorphic relation under the verify fuzz grammar: round-robin sharded
// ingest followed by Combine() must be counter-exact against a single
// sequential sketch, on every fuzz workload family (zipf / uniform / flows
// / adversarial), not just the hand-picked Zipf stream above.
TEST(ShardedSketchTest, CombineMatchesSequentialOnFuzzWorkloads) {
  for (uint64_t index = 0; index < 6; ++index) {
    const FuzzProgram program = ProgramFromSeed(777, index);
    auto stream = MaterializeStream(program);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();

    auto sharded = ShardedCountSketch::Make(DefaultParams(), 3);
    ASSERT_TRUE(sharded.ok());
    for (size_t i = 0; i < stream->size(); ++i) {
      sharded->shard(i % 3).Add((*stream)[i]);
    }
    auto combined = sharded->Combine();
    ASSERT_TRUE(combined.ok());

    auto sequential = CountSketch::Make(DefaultParams());
    ASSERT_TRUE(sequential.ok());
    for (ItemId q : *stream) sequential->Add(q);

    for (size_t row = 0; row < sequential->depth(); ++row) {
      for (size_t col = 0; col < sequential->width(); ++col) {
        ASSERT_EQ(combined->CounterAt(row, col),
                  sequential->CounterAt(row, col))
            << "program " << index << " (" << WorkloadKindName(program.kind)
            << ") row " << row << " col " << col;
      }
    }
  }
}

TEST(ShardedSketchTest, SpaceIsShardsTimesSketch) {
  auto sharded = ShardedCountSketch::Make(DefaultParams(), 3);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->SpaceBytes(), 3 * sharded->shard(0).SpaceBytes());
}

}  // namespace
}  // namespace streamfreq
