// Property sweeps over the counter-based algorithms: the deterministic
// guarantees of Misra-Gries, Space-Saving (both layouts), and Lossy
// Counting must hold for EVERY (skew, capacity) combination, not just the
// hand-picked unit-test points.
#include <gtest/gtest.h>

#include <memory>

#include "core/lossy_counting.h"
#include "core/misra_gries.h"
#include "core/space_saving.h"
#include "core/stream_summary.h"
#include "eval/workload.h"

namespace streamfreq {
namespace {

struct CounterCase {
  double z;
  size_t capacity;
};

std::string CaseName(const ::testing::TestParamInfo<CounterCase>& info) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "z%dp%02d_c%zu",
                static_cast<int>(info.param.z),
                static_cast<int>(info.param.z * 100) % 100,
                info.param.capacity);
  return buf;
}

class CounterPropertyTest : public ::testing::TestWithParam<CounterCase> {
 protected:
  void SetUp() override {
    auto w = MakeZipfWorkload(5000, GetParam().z, 60000,
                              static_cast<uint64_t>(GetParam().z * 1000) +
                                  GetParam().capacity);
    ASSERT_TRUE(w.ok());
    workload_ = std::make_unique<Workload>(std::move(*w));
  }

  std::unique_ptr<Workload> workload_;
};

TEST_P(CounterPropertyTest, MisraGriesDeterministicGuarantees) {
  const size_t cap = GetParam().capacity;
  auto mg = MisraGries::Make(cap);
  ASSERT_TRUE(mg.ok());
  mg->AddAll(workload_->stream);

  const Count n = static_cast<Count>(workload_->stream.size());
  const Count bound = n / static_cast<Count>(cap + 1);
  for (const auto& [item, count] : workload_->oracle.counts()) {
    const Count est = mg->Estimate(item);
    ASSERT_LE(est, count) << "never overestimate";
    ASSERT_GE(est, count - bound) << "undercount bounded by n/(c+1)";
    if (count > bound) {
      ASSERT_GT(est, 0) << "heavy item must be monitored";
    }
  }
  ASSERT_LE(mg->Candidates(10 * cap).size(), cap);
}

TEST_P(CounterPropertyTest, SpaceSavingBothLayoutsGuarantees) {
  const size_t cap = GetParam().capacity;
  auto heap = SpaceSaving::Make(cap);
  auto list = StreamSummarySpaceSaving::Make(cap);
  ASSERT_TRUE(heap.ok() && list.ok());
  heap->AddAll(workload_->stream);
  list->AddAll(workload_->stream);

  const Count n = static_cast<Count>(workload_->stream.size());
  for (auto* algo : std::initializer_list<StreamSummary*>{&*heap, &*list}) {
    Count total = 0;
    for (const ItemCount& ic : algo->Candidates(cap)) {
      total += ic.count;
      ASSERT_GE(ic.count, workload_->oracle.CountOf(ic.item))
          << algo->Name() << ": counts are upper bounds";
    }
    ASSERT_EQ(total, n) << algo->Name()
                        << ": monitored counts must sum to the stream length";
  }
  ASSERT_LE(heap->MinCount(), n / static_cast<Count>(cap));
  ASSERT_LE(list->MinCount(), n / static_cast<Count>(cap));
  ASSERT_TRUE(list->CheckInvariants());
}

TEST_P(CounterPropertyTest, LossyCountingGuarantees) {
  // Map capacity to epsilon the way the suite does.
  const double eps = 1.0 / static_cast<double>(GetParam().capacity * 4);
  auto lc = LossyCounting::Make(eps);
  ASSERT_TRUE(lc.ok());
  lc->AddAll(workload_->stream);

  const double n = static_cast<double>(workload_->stream.size());
  for (const auto& [item, count] : workload_->oracle.counts()) {
    const Count est = lc->Estimate(item);
    ASSERT_LE(est, count) << "never overestimate";
    ASSERT_GE(static_cast<double>(est),
              static_cast<double>(count) - eps * n - 1.0)
        << "undercount bounded by eps*n";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CounterPropertyTest,
    ::testing::Values(CounterCase{0.5, 16}, CounterCase{0.5, 128},
                      CounterCase{0.8, 16}, CounterCase{0.8, 128},
                      CounterCase{1.0, 16}, CounterCase{1.0, 64},
                      CounterCase{1.2, 32}, CounterCase{1.2, 256},
                      CounterCase{1.5, 16}, CounterCase{2.0, 64}),
    CaseName);

}  // namespace
}  // namespace streamfreq
