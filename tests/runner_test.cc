#include "eval/runner.h"

#include <gtest/gtest.h>

#include "core/space_saving.h"
#include "eval/workload.h"

namespace streamfreq {
namespace {

TEST(RunnerTest, ScoresPerfectAlgorithmPerfectly) {
  auto workload = MakeZipfWorkload(500, 1.2, 20000, 3);
  ASSERT_TRUE(workload.ok());
  // Space-Saving with capacity = universe is exact.
  auto ss = SpaceSaving::Make(500);
  ASSERT_TRUE(ss.ok());
  const RunResult r = RunAndScore(*ss, *workload, 10);
  EXPECT_EQ(r.algorithm, ss->Name());
  EXPECT_DOUBLE_EQ(r.topk_quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.topk_quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.are_topk, 0.0);
  EXPECT_DOUBLE_EQ(r.max_abs_error, 0.0);
  EXPECT_GT(r.items_per_second, 0.0);
  EXPECT_GT(r.update_ns_per_item, 0.0);
  EXPECT_GT(r.space_bytes, 0u);
}

TEST(RunnerTest, TinySummaryScoresImperfectly) {
  auto workload = MakeZipfWorkload(5000, 0.7, 50000, 5);
  ASSERT_TRUE(workload.ok());
  auto ss = SpaceSaving::Make(10);  // way too small for z=0.7 top-10
  ASSERT_TRUE(ss.ok());
  const RunResult r = RunAndScore(*ss, *workload, 10);
  EXPECT_GT(r.are_topk, 0.0) << "overestimates must show up in ARE";
}

TEST(WorkloadTest, ZipfWorkloadConsistent) {
  auto w = MakeZipfWorkload(1000, 1.0, 5000, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->n(), 5000u);
  EXPECT_EQ(w->oracle.TotalCount(), 5000);
  EXPECT_LE(w->oracle.Distinct(), 1000u);
  EXPECT_NE(w->description.find("Zipf"), std::string::npos);
}

TEST(WorkloadTest, FlowWorkloadConsistent) {
  auto w = MakeFlowWorkload(1.2, 5000, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->n(), 5000u);
  EXPECT_EQ(w->oracle.TotalCount(), 5000);
}

TEST(WorkloadTest, PropagatesGeneratorErrors) {
  EXPECT_TRUE(MakeZipfWorkload(0, 1.0, 10, 1).status().IsInvalidArgument());
  EXPECT_TRUE(MakeFlowWorkload(-1.0, 10, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace streamfreq
