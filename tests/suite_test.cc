#include "eval/suite.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/workload.h"

namespace streamfreq {
namespace {

SuiteSpec SmallSpec() {
  SuiteSpec spec;
  spec.space_budget_bytes = 32 * 1024;
  spec.k = 20;
  spec.seed = 3;
  spec.expected_stream_length = 100000;
  return spec;
}

TEST(SuiteTest, RejectsDegenerateSpecs) {
  SuiteSpec spec = SmallSpec();
  spec.k = 0;
  EXPECT_TRUE(
      MakeAlgorithm(AlgorithmKind::kMisraGries, spec).status().IsInvalidArgument());
  spec = SmallSpec();
  spec.space_budget_bytes = 0;
  EXPECT_TRUE(
      MakeAlgorithm(AlgorithmKind::kSpaceSaving, spec).status().IsInvalidArgument());
}

TEST(SuiteTest, DefaultSuiteHasDistinctNames) {
  auto suite = MakeDefaultSuite(SmallSpec());
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->size(), 11u);
  std::unordered_set<std::string> names;
  for (const auto& algo : *suite) names.insert(algo->Name());
  EXPECT_EQ(names.size(), suite->size()) << "algorithm names must be unique";
}

TEST(SuiteTest, AllAlgorithmsRunAndStayNearBudget) {
  auto workload = MakeZipfWorkload(20000, 1.1, 100000, 5);
  ASSERT_TRUE(workload.ok());
  const SuiteSpec spec = SmallSpec();
  auto suite = MakeDefaultSuite(spec);
  ASSERT_TRUE(suite.ok());

  for (const auto& algo : *suite) {
    algo->AddAll(workload->stream);
    // Space should be within 4x of the requested budget in either
    // direction (capacity-based algorithms may not fill up).
    EXPECT_LT(algo->SpaceBytes(), spec.space_budget_bytes * 4)
        << algo->Name() << " blew the budget";
    EXPECT_FALSE(algo->Candidates(spec.k).empty())
        << algo->Name() << " returned no candidates";
  }
}

TEST(SuiteTest, AllAlgorithmsFindTheHeadOnHeavySkew) {
  // At z=1.3 the rank-1 item is unmissable; every algorithm in the suite
  // must put it in its top-5 candidates.
  auto workload = MakeZipfWorkload(10000, 1.3, 120000, 7);
  ASSERT_TRUE(workload.ok());
  const ItemId head = workload->oracle.TopK(1)[0].item;

  auto suite = MakeDefaultSuite(SmallSpec());
  ASSERT_TRUE(suite.ok());
  for (const auto& algo : *suite) {
    algo->AddAll(workload->stream);
    bool found = false;
    for (const ItemCount& ic : algo->Candidates(5)) {
      if (ic.item == head) found = true;
    }
    EXPECT_TRUE(found) << algo->Name() << " missed the rank-1 item";
  }
}

TEST(SuiteTest, BiggerBudgetNeverHurtsCountSketch) {
  auto workload = MakeZipfWorkload(20000, 1.0, 150000, 9);
  ASSERT_TRUE(workload.ok());
  const auto truth = workload->oracle.TopK(20);

  auto run_with_budget = [&](size_t budget) {
    SuiteSpec spec = SmallSpec();
    spec.space_budget_bytes = budget;
    auto algo = MakeAlgorithm(AlgorithmKind::kCountSketchTopK, spec);
    EXPECT_TRUE(algo.ok());
    (*algo)->AddAll(workload->stream);
    double total_err = 0;
    for (const ItemCount& ic : truth) {
      total_err += std::abs(
          static_cast<double>((*algo)->Estimate(ic.item) - ic.count));
    }
    return total_err;
  };

  const double small_err = run_with_budget(8 * 1024);
  const double large_err = run_with_budget(512 * 1024);
  EXPECT_LE(large_err, small_err + 1.0)
      << "64x more space should not increase total error";
}

}  // namespace
}  // namespace streamfreq
