// End-to-end tests of the seeded fuzz engine: the acceptance campaign is
// clean at Lemma 5 sizing, a deliberately mis-sized sketch produces a
// reported + shrunk + replayable failure, and the metamorphic mutations
// hold for the linear sketches.
#include <gtest/gtest.h>

#include <string>

#include "verify/fuzz.h"
#include "verify/program.h"
#include "verify/violation.h"

namespace streamfreq {
namespace {

// The acceptance criterion: 200 seeded programs across every workload
// family and mutation, zero violations at the paper's proven sizing.
TEST(FuzzDriverTest, SeededCampaignIsCleanAtLemma5Sizing) {
  FuzzOptions options;
  options.seed = 42;
  options.iterations = 200;
  const FuzzDriver driver(options);
  auto report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->programs, 200u);
  EXPECT_EQ(report->violations, 0u);
  EXPECT_TRUE(report->Pass());
  EXPECT_TRUE(report->failures.empty());
  // Every algorithm in the registry was exercised.
  for (const char* name :
       {"count-sketch", "approx-top", "count-min", "count-min-cu",
        "misra-gries", "space-saving", "lossy-counting"}) {
    EXPECT_GT(report->checks_by_algorithm.count(name), 0u) << name;
    EXPECT_GT(report->checks_by_algorithm.at(name), 0u) << name;
  }
}

TEST(FuzzDriverTest, CampaignIsDeterministic) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 25;
  const FuzzDriver driver(options);
  auto a = driver.Run();
  auto b = driver.Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->checks, b->checks);
  EXPECT_EQ(a->violations, b->violations);
  EXPECT_EQ(a->checks_by_algorithm, b->checks_by_algorithm);
}

// A sketch squeezed to 0.1% of the Lemma 5 width (gamma ~32x larger than
// proven) must produce violations — the oracle firing on a real, mis-built
// configuration rather than a hand-written fake. Width scales as mild as
// 2% still pass: the paper's 256x width constant is extremely conservative.
TEST(FuzzDriverTest, MissizedSketchFailsShrinksAndReplays) {
  FuzzOptions options;
  options.seed = 42;
  options.iterations = 40;
  options.algorithm_filter = "approx-top";
  options.width_scale = 0.001;
  const FuzzDriver driver(options);
  auto report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->Pass());
  ASSERT_FALSE(report->failures.empty());

  const FuzzFailure& failure = report->failures.front();
  // Shrinking never grows the program and preserves the failure.
  EXPECT_LE(failure.minimal.n, failure.program.n);
  EXPECT_LE(failure.minimal.universe, failure.program.universe);
  EXPECT_LE(failure.minimal.k, failure.program.k);
  EXPECT_FALSE(failure.violations.empty());

  // The minimal program replays: parse its own text form and re-run it.
  const std::string line = FormatProgram(failure.minimal);
  auto parsed = ParseProgram(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto replay = driver.RunProgram(*parsed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->violations.empty()) << "reproducer lost: " << line;
  for (const Violation& v : replay->violations) {
    EXPECT_EQ(v.algorithm, "approx-top") << FormatViolation(v);
  }
}

// Each metamorphic mutation, driven explicitly against the linear sketches:
// permuted / batched / split-merge / serialize-mid / parallel ingestion must
// leave Count-Sketch estimates bit-identical to sequential ingestion
// (additivity — the observation behind the paper's distributed use).
TEST(FuzzDriverTest, MetamorphicMutationsAreExactForLinearSketches) {
  const FuzzDriver driver(FuzzOptions{});
  for (Mutation mutation :
       {Mutation::kPermuted, Mutation::kBatched, Mutation::kSplitMerge,
        Mutation::kSerializeMidStream, Mutation::kParallel,
        Mutation::kBatchedScalar}) {
    for (const char* algo : {"count-sketch", "count-min"}) {
      FuzzProgram program;
      program.kind = WorkloadKind::kZipf;
      program.n = 8000;
      program.universe = 1024;
      program.mutation = mutation;
      program.seed = 1234;
      FuzzOptions options;
      options.algorithm_filter = algo;
      auto result = FuzzDriver(options).RunProgram(program);
      ASSERT_TRUE(result.ok())
          << algo << "/" << MutationName(mutation) << ": "
          << result.status().ToString();
      if (result->checks == 0) continue;  // mutation unsupported (e.g. CU)
      for (const Violation& v : result->violations) {
        ADD_FAILURE() << algo << "/" << MutationName(mutation) << ": "
                      << FormatViolation(v);
      }
    }
  }
}

TEST(FuzzDriverTest, AlgorithmFilterRestrictsChecks) {
  FuzzOptions options;
  options.seed = 11;
  options.iterations = 10;
  options.algorithm_filter = "misra-gries";
  auto report = FuzzDriver(options).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->checks, 0u);
  EXPECT_EQ(report->checks_by_algorithm.size(), 1u);
  EXPECT_GT(report->checks_by_algorithm.count("misra-gries"), 0u);
}

}  // namespace
}  // namespace streamfreq
