#include "util/logging.h"

#include <gtest/gtest.h>

namespace streamfreq {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const auto original = internal::GetMinLogLevel();
  internal::SetMinLogLevel(internal::LogLevel::kError);
  EXPECT_EQ(internal::GetMinLogLevel(), internal::LogLevel::kError);
  internal::SetMinLogLevel(original);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SFQ_CHECK(true);
  SFQ_CHECK_EQ(1, 1);
  SFQ_CHECK_NE(1, 2);
  SFQ_CHECK_LT(1, 2);
  SFQ_CHECK_LE(2, 2);
  SFQ_CHECK_GT(3, 2);
  SFQ_CHECK_GE(3, 3);
  SFQ_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ SFQ_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckEqFailurePrintsOperands) {
  EXPECT_DEATH({ SFQ_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(LoggingDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH({ SFQ_CHECK_OK(Status::IoError("disk gone")); }, "disk gone");
}

TEST(LoggingTest, DebugChecksCompileInBothModes) {
  SFQ_DCHECK(true);
  SFQ_DCHECK_LT(1, 2);
  SFQ_DCHECK_LE(1, 1);
  SFQ_DCHECK_GE(2, 1);
}

}  // namespace
}  // namespace streamfreq
