#include "core/sketch_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/failpoint.h"
#include "verify/program.h"

namespace streamfreq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

CountSketch MakeLoadedSketch() {
  CountSketchParams p;
  p.depth = 4;
  p.width = 256;
  p.seed = 99;
  auto s = CountSketch::Make(p);
  EXPECT_TRUE(s.ok());
  for (ItemId q = 1; q <= 1000; ++q) s->Add(q, static_cast<Count>(q % 31));
  return std::move(*s);
}

TEST(SketchIoTest, RoundTrip) {
  const std::string path = TempPath("sfq_sketch_roundtrip.skf");
  const CountSketch original = MakeLoadedSketch();
  ASSERT_TRUE(WriteSketchFile(path, original).ok());
  auto loaded = ReadSketchFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->CompatibleWith(original));
  for (ItemId q = 1; q <= 1000; ++q) {
    ASSERT_EQ(loaded->Estimate(q), original.Estimate(q));
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadSketchFile(TempPath("nope.skf")).status().IsIoError());
}

TEST(SketchIoTest, FlippedPayloadBitIsCorruption) {
  const std::string path = TempPath("sfq_sketch_bitflip.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());

  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] ^= 0x10;  // corrupt mid-payload
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data.data(), static_cast<std::streamsize>(data.size()));

  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, TruncationIsCorruption) {
  const std::string path = TempPath("sfq_sketch_trunc.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data.data(), static_cast<std::streamsize>(data.size() - 100));
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());

  // Header-only truncation.
  std::ofstream(path, std::ios::binary | std::ios::trunc).write(data.data(), 10);
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, BadMagicIsCorruption) {
  const std::string path = TempPath("sfq_sketch_magic.skf");
  std::ofstream(path, std::ios::binary)
      << std::string(64, 'x');  // 64 junk bytes
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

// Metamorphic relation from the verify fuzz grammar: serializing the sketch
// mid-stream and continuing on the deserialized copy must be invisible —
// exact counter equality against an uninterrupted ingest, across every
// fuzz workload family.
TEST(SketchIoTest, SerializeMidStreamIsInvisible) {
  for (uint64_t index = 0; index < 4; ++index) {
    const FuzzProgram program = ProgramFromSeed(2026, index);
    auto stream = MaterializeStream(program);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();

    CountSketchParams p;
    p.depth = 5;
    p.width = 512;
    p.seed = 31;
    auto uninterrupted = CountSketch::Make(p);
    ASSERT_TRUE(uninterrupted.ok());
    for (ItemId q : *stream) uninterrupted->Add(q);

    auto first_half = CountSketch::Make(p);
    ASSERT_TRUE(first_half.ok());
    const size_t cut = stream->size() / 2;
    for (size_t i = 0; i < cut; ++i) first_half->Add((*stream)[i]);
    const std::string path = TempPath("sfq_sketch_midstream.skf");
    ASSERT_TRUE(WriteSketchFile(path, *first_half).ok());
    auto resumed = ReadSketchFile(path);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    std::remove(path.c_str());
    for (size_t i = cut; i < stream->size(); ++i) resumed->Add((*stream)[i]);

    for (size_t row = 0; row < uninterrupted->depth(); ++row) {
      for (size_t col = 0; col < uninterrupted->width(); ++col) {
        ASSERT_EQ(resumed->CounterAt(row, col),
                  uninterrupted->CounterAt(row, col))
            << "program " << index << " row " << row << " col " << col;
      }
    }
  }
}

TEST(SketchIoTest, SavedSketchStaysMergeable) {
  const std::string path = TempPath("sfq_sketch_merge.skf");
  CountSketchParams p;
  p.depth = 4;
  p.width = 128;
  p.seed = 7;
  auto a = CountSketch::Make(p);
  ASSERT_TRUE(a.ok());
  a->Add(42, 10);
  ASSERT_TRUE(WriteSketchFile(path, *a).ok());

  auto b = ReadSketchFile(path);
  ASSERT_TRUE(b.ok());
  b->Add(42, 5);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Estimate(42), 25);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption matrix + crash-consistency. Every adversarial mutation of a
// valid file must come back as a clean Corruption status — no crash, no UB
// (this file runs under the ASan/UBSan step of scripts/check.sh).

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  EXPECT_TRUE(static_cast<bool>(out)) << path;
}

TEST(SketchIoTest, CorruptionMatrixTruncationAtEveryFieldBoundary) {
  const std::string path = TempPath("sfq_sketch_matrix_trunc.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  const std::string valid = ReadAll(path);
  ASSERT_GT(valid.size(), 20u);

  // Field boundaries of the header (magic | length | crc | payload) plus
  // mid-field cuts and the one-byte-short file.
  const size_t cuts[] = {0, 1, 7, 8, 12, 15, 16, 19, 20, 21,
                         20 + (valid.size() - 20) / 2, valid.size() - 1};
  for (const size_t cut : cuts) {
    WriteAll(path, valid.substr(0, cut));
    const Status s = ReadSketchFile(path).status();
    EXPECT_TRUE(s.IsCorruption()) << "cut at " << cut << ": " << s.ToString();
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, CorruptionMatrixSingleBitFlips) {
  const std::string path = TempPath("sfq_sketch_matrix_bits.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  const std::string valid = ReadAll(path);

  // Every bit of the header, then a stride through the payload. A flip in
  // the length field may masquerade as truncation or an implausible length;
  // all of those are Corruption too, never a crash.
  std::vector<size_t> byte_positions;
  for (size_t i = 0; i < 20; ++i) byte_positions.push_back(i);
  for (size_t i = 20; i < valid.size(); i += 37) byte_positions.push_back(i);
  for (const size_t pos : byte_positions) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = valid;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ (1u << bit));
      WriteAll(path, mutated);
      const Status s = ReadSketchFile(path).status();
      EXPECT_TRUE(s.IsCorruption())
          << "flip byte " << pos << " bit " << bit << ": " << s.ToString();
    }
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, CorruptionMatrixWrongMagicAndVersion) {
  const std::string path = TempPath("sfq_sketch_matrix_magic.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  const std::string valid = ReadAll(path);

  // A future-version tag (last magic byte bumped) must be rejected, as must
  // an entirely alien magic.
  std::string version_bump = valid;
  version_bump[7] = static_cast<char>(version_bump[7] + 1);
  WriteAll(path, version_bump);
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());

  std::string alien = valid;
  for (size_t i = 0; i < 8; ++i) alien[i] = 'Z';
  WriteAll(path, alien);
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, TrailingBytesAreCorruption) {
  const std::string path = TempPath("sfq_sketch_matrix_trailing.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  WriteAll(path, ReadAll(path) + "junk");
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, AtomicWriteLeavesNoTempFileBehind) {
  const std::string path = TempPath("sfq_sketch_atomic.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(static_cast<bool>(tmp)) << "temp file must be renamed away";
  std::remove(path.c_str());
}

// Crash consistency: a save that dies before the rename (injected) must
// leave the previous checkpoint byte-for-byte intact.
TEST(SketchIoTest, FailedRenameLeavesPreviousCheckpointIntact) {
  const std::string path = TempPath("sfq_sketch_crash.skf");
  const CountSketch original = MakeLoadedSketch();
  ASSERT_TRUE(WriteSketchFile(path, original).ok());
  const std::string before = ReadAll(path);

  {
    ScopedFailpoints fp("sketch_io.rename=error*1", 3);
    ASSERT_TRUE(fp.status().ok());
    CountSketchParams p;
    p.depth = 4;
    p.width = 256;
    p.seed = 99;
    auto newer = CountSketch::Make(p);
    ASSERT_TRUE(newer.ok());
    newer->Add(7, 7);
    EXPECT_TRUE(WriteSketchFile(path, *newer).IsIoError());
  }

  EXPECT_EQ(ReadAll(path), before);
  auto loaded = ReadSketchFile(path);
  ASSERT_TRUE(loaded.ok());
  for (ItemId q = 1; q <= 1000; ++q) {
    ASSERT_EQ(loaded->Estimate(q), original.Estimate(q));
  }
  std::remove(path.c_str());
}

// A torn write (injected) bypasses the temp+rename protocol by design; the
// reader must then catch the prefix via its truncation/CRC checks.
TEST(SketchIoTest, InjectedTornWriteIsCaughtOnRead) {
  const std::string path = TempPath("sfq_sketch_torn.skf");
  {
    ScopedFailpoints fp("sketch_io.write=torn*1", 5);
    ASSERT_TRUE(fp.status().ok());
    EXPECT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).IsIoError());
  }
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, InjectedReadFaultsSurfaceAsStatuses) {
  const std::string path = TempPath("sfq_sketch_readfp.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  {
    ScopedFailpoints fp("sketch_io.read=error*1", 7);
    ASSERT_TRUE(fp.status().ok());
    EXPECT_TRUE(ReadSketchFile(path).status().IsIoError());
  }
  {
    ScopedFailpoints fp("sketch_io.read=bitflip*1", 7);
    ASSERT_TRUE(fp.status().ok());
    EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  }
  // Disarmed again: the file itself was never touched.
  EXPECT_TRUE(ReadSketchFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamfreq
