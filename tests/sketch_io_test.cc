#include "core/sketch_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "verify/program.h"

namespace streamfreq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

CountSketch MakeLoadedSketch() {
  CountSketchParams p;
  p.depth = 4;
  p.width = 256;
  p.seed = 99;
  auto s = CountSketch::Make(p);
  EXPECT_TRUE(s.ok());
  for (ItemId q = 1; q <= 1000; ++q) s->Add(q, static_cast<Count>(q % 31));
  return std::move(*s);
}

TEST(SketchIoTest, RoundTrip) {
  const std::string path = TempPath("sfq_sketch_roundtrip.skf");
  const CountSketch original = MakeLoadedSketch();
  ASSERT_TRUE(WriteSketchFile(path, original).ok());
  auto loaded = ReadSketchFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->CompatibleWith(original));
  for (ItemId q = 1; q <= 1000; ++q) {
    ASSERT_EQ(loaded->Estimate(q), original.Estimate(q));
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadSketchFile(TempPath("nope.skf")).status().IsIoError());
}

TEST(SketchIoTest, FlippedPayloadBitIsCorruption) {
  const std::string path = TempPath("sfq_sketch_bitflip.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());

  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] ^= 0x10;  // corrupt mid-payload
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data.data(), static_cast<std::streamsize>(data.size()));

  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, TruncationIsCorruption) {
  const std::string path = TempPath("sfq_sketch_trunc.skf");
  ASSERT_TRUE(WriteSketchFile(path, MakeLoadedSketch()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(data.data(), static_cast<std::streamsize>(data.size() - 100));
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());

  // Header-only truncation.
  std::ofstream(path, std::ios::binary | std::ios::trunc).write(data.data(), 10);
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SketchIoTest, BadMagicIsCorruption) {
  const std::string path = TempPath("sfq_sketch_magic.skf");
  std::ofstream(path, std::ios::binary)
      << std::string(64, 'x');  // 64 junk bytes
  EXPECT_TRUE(ReadSketchFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

// Metamorphic relation from the verify fuzz grammar: serializing the sketch
// mid-stream and continuing on the deserialized copy must be invisible —
// exact counter equality against an uninterrupted ingest, across every
// fuzz workload family.
TEST(SketchIoTest, SerializeMidStreamIsInvisible) {
  for (uint64_t index = 0; index < 4; ++index) {
    const FuzzProgram program = ProgramFromSeed(2026, index);
    auto stream = MaterializeStream(program);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();

    CountSketchParams p;
    p.depth = 5;
    p.width = 512;
    p.seed = 31;
    auto uninterrupted = CountSketch::Make(p);
    ASSERT_TRUE(uninterrupted.ok());
    for (ItemId q : *stream) uninterrupted->Add(q);

    auto first_half = CountSketch::Make(p);
    ASSERT_TRUE(first_half.ok());
    const size_t cut = stream->size() / 2;
    for (size_t i = 0; i < cut; ++i) first_half->Add((*stream)[i]);
    const std::string path = TempPath("sfq_sketch_midstream.skf");
    ASSERT_TRUE(WriteSketchFile(path, *first_half).ok());
    auto resumed = ReadSketchFile(path);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    std::remove(path.c_str());
    for (size_t i = cut; i < stream->size(); ++i) resumed->Add((*stream)[i]);

    for (size_t row = 0; row < uninterrupted->depth(); ++row) {
      for (size_t col = 0; col < uninterrupted->width(); ++col) {
        ASSERT_EQ(resumed->CounterAt(row, col),
                  uninterrupted->CounterAt(row, col))
            << "program " << index << " row " << row << " col " << col;
      }
    }
  }
}

TEST(SketchIoTest, SavedSketchStaysMergeable) {
  const std::string path = TempPath("sfq_sketch_merge.skf");
  CountSketchParams p;
  p.depth = 4;
  p.width = 128;
  p.seed = 7;
  auto a = CountSketch::Make(p);
  ASSERT_TRUE(a.ok());
  a->Add(42, 10);
  ASSERT_TRUE(WriteSketchFile(path, *a).ok());

  auto b = ReadSketchFile(path);
  ASSERT_TRUE(b.ok());
  b->Add(42, 5);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Estimate(42), 25);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamfreq
