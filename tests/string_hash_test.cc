#include "hash/string_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace streamfreq {
namespace {

TEST(StringHashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(HashString("hello", 1), HashString("hello", 1));
  EXPECT_EQ(HashString("", 0), HashString("", 0));
}

TEST(StringHashTest, SeedChangesOutput) {
  EXPECT_NE(HashString("hello", 1), HashString("hello", 2));
}

TEST(StringHashTest, ContentChangesOutput) {
  EXPECT_NE(HashString("hello", 1), HashString("hellp", 1));
  EXPECT_NE(HashString("abc", 1), HashString("abcd", 1));
  // Length is mixed in, so a trailing NUL-like extension differs too.
  EXPECT_NE(HashString(std::string("a\0", 2), 1), HashString("a", 1));
}

TEST(StringHashTest, LongInputsCrossBlockBoundaries) {
  std::string base(1000, 'x');
  std::string changed = base;
  changed[500] = 'y';
  EXPECT_NE(HashString(base, 1), HashString(changed, 1));
  changed = base;
  changed[999] = 'y';  // in the length-tail block
  EXPECT_NE(HashString(base, 1), HashString(changed, 1));
}

TEST(StringHashTest, NoCollisionsOnSmallCorpus) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    seen.insert(HashString("key-" + std::to_string(i), 7));
  }
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(StringHashTest, BitsLookBalanced) {
  // Count set bits across many hashes: each bit position should be ~50%.
  constexpr int kKeys = 20000;
  int bit_counts[64] = {};
  for (int i = 0; i < kKeys; ++i) {
    const uint64_t h = HashString("item" + std::to_string(i), 3);
    for (int b = 0; b < 64; ++b) {
      bit_counts[b] += (h >> b) & 1;
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(bit_counts[b], kKeys / 2, 600) << "bit " << b;
  }
}

TEST(StringHashTest, HashBytesAgreesWithHashString) {
  const std::string s = "some payload";
  EXPECT_EQ(HashBytes(s.data(), s.size(), 9), HashString(s, 9));
}

}  // namespace
}  // namespace streamfreq
