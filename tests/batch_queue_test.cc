#include "concurrent/batch_queue.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace streamfreq {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::vector<ItemId> MakeBatch(ItemId tag) { return {tag, tag, tag}; }

TEST(BatchQueueTest, PushPopRoundTrip) {
  BatchQueue queue(4);
  ASSERT_TRUE(queue.Push(MakeBatch(1)));
  ASSERT_TRUE(queue.Push(MakeBatch(2)));
  EXPECT_EQ(queue.Depth(), 2u);
  const auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->front(), 1u);
}

// The satellite regression: with the consumer stalled and the queue full, a
// deadline push returns kTimedOut within (roughly) its deadline instead of
// parking forever, and the caller still owns the batch.
TEST(BatchQueueTest, StalledConsumerPushReturnsWithinDeadline) {
  BatchQueue queue(1);
  ASSERT_TRUE(queue.Push(MakeBatch(1)));  // fill; nobody will ever pop

  std::vector<ItemId> batch = MakeBatch(2);
  const auto start = steady_clock::now();
  const QueuePushResult result = queue.PushWithTimeout(&batch, milliseconds(50));
  const auto elapsed = steady_clock::now() - start;

  EXPECT_EQ(result, QueuePushResult::kTimedOut);
  EXPECT_EQ(batch.size(), 3u) << "timed-out push must retain the batch";
  EXPECT_GE(elapsed, milliseconds(45));
  EXPECT_LT(elapsed, milliseconds(5000)) << "push must not block indefinitely";
}

TEST(BatchQueueTest, CloseFailsBlockedProducersFast) {
  BatchQueue queue(1);
  ASSERT_TRUE(queue.Push(MakeBatch(1)));

  std::thread closer([&queue] {
    std::this_thread::sleep_for(milliseconds(20));
    queue.Close();
  });
  // A long-deadline push parked on a full queue must be woken by Close and
  // fail well before its deadline.
  std::vector<ItemId> batch = MakeBatch(2);
  const auto start = steady_clock::now();
  const QueuePushResult result =
      queue.PushWithTimeout(&batch, milliseconds(10000));
  const auto elapsed = steady_clock::now() - start;
  closer.join();

  EXPECT_EQ(result, QueuePushResult::kClosed);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_LT(elapsed, milliseconds(5000));
  // And the plain blocking Push also fails fast once closed.
  EXPECT_FALSE(queue.Push(MakeBatch(3)));
}

TEST(BatchQueueTest, TryPushNeverBlocks) {
  BatchQueue queue(1);
  std::vector<ItemId> a = MakeBatch(1);
  std::vector<ItemId> b = MakeBatch(2);
  EXPECT_EQ(queue.TryPush(&a), QueuePushResult::kOk);
  EXPECT_EQ(queue.TryPush(&b), QueuePushResult::kTimedOut);
  EXPECT_EQ(b.size(), 3u) << "rejected TryPush must retain the batch";
  queue.Close();
  EXPECT_EQ(queue.TryPush(&b), QueuePushResult::kClosed);
}

TEST(BatchQueueTest, RequeueGoesToFrontAndIgnoresCapacity) {
  BatchQueue queue(1);
  ASSERT_TRUE(queue.Push(MakeBatch(1)));
  queue.Requeue(MakeBatch(7));  // over capacity by design
  EXPECT_EQ(queue.Depth(), 2u);
  const auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->front(), 7u) << "requeued batch must be popped first";
}

TEST(BatchQueueTest, RequeueAfterCloseIsStillDrained) {
  BatchQueue queue(2);
  queue.Close();
  queue.Requeue(MakeBatch(9));
  const auto batch = queue.Pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->front(), 9u);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BatchQueueTest, PopDrainsAfterClose) {
  BatchQueue queue(4);
  ASSERT_TRUE(queue.Push(MakeBatch(1)));
  ASSERT_TRUE(queue.Push(MakeBatch(2)));
  queue.Close();
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BatchQueueTest, PushFailpointErrorLooksLikeClosed) {
  ScopedFailpoints fp("batch_queue.push=error*1", 3);
  ASSERT_TRUE(fp.status().ok());
  BatchQueue queue(4);
  EXPECT_FALSE(queue.Push(MakeBatch(1)));  // injected failure
  EXPECT_TRUE(queue.Push(MakeBatch(2)));   // budget spent; next succeeds
  EXPECT_EQ(queue.Depth(), 1u);
}

TEST(BatchQueueTest, MpmcStressDeliversEveryBatch) {
  BatchQueue queue(4);
  constexpr int kProducers = 2;
  constexpr int kBatchesEach = 50;
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kBatchesEach; ++i) {
        ASSERT_TRUE(queue.Push(MakeBatch(static_cast<ItemId>(p * 1000 + i))));
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&queue, &popped] {
      while (queue.Pop().has_value()) popped.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.Close();
  threads[kProducers].join();
  threads[kProducers + 1].join();
  EXPECT_EQ(popped.load(), kProducers * kBatchesEach);
}

}  // namespace
}  // namespace streamfreq
