#include "core/self_tuning.h"

#include <gtest/gtest.h>

#include "core/top_k_tracker.h"
#include "eval/metrics.h"
#include "eval/workload.h"

namespace streamfreq {
namespace {

ProfilerParams DefaultParams() {
  ProfilerParams p;
  p.k = 10;
  p.epsilon = 0.2;
  p.delta = 0.05;
  p.space_saving_capacity = 1024;
  p.f2.groups = 9;
  p.f2.atoms_per_group = 32;
  p.seed = 5;
  return p;
}

TEST(SelfTuningTest, RejectsBadParams) {
  ProfilerParams p = DefaultParams();
  p.k = 0;
  EXPECT_TRUE(StreamProfiler::Make(p).status().IsInvalidArgument());
  p = DefaultParams();
  p.space_saving_capacity = 5;  // < 2k
  EXPECT_TRUE(StreamProfiler::Make(p).status().IsInvalidArgument());
  p = DefaultParams();
  p.epsilon = 0.0;
  EXPECT_TRUE(StreamProfiler::Make(p).status().IsInvalidArgument());
}

TEST(SelfTuningTest, SizeBeforeProfilingFails) {
  auto profiler = StreamProfiler::Make(DefaultParams());
  ASSERT_TRUE(profiler.ok());
  EXPECT_TRUE(profiler->Size(1000).status().IsInvalidArgument());
  profiler->Add(1);
  EXPECT_TRUE(profiler->Size(0).status().IsInvalidArgument());
}

TEST(SelfTuningTest, ProfiledStatisticsTrackTruth) {
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 17);
  ASSERT_TRUE(workload.ok());
  auto profiler = StreamProfiler::Make(DefaultParams());
  ASSERT_TRUE(profiler.ok());
  for (ItemId q : workload->stream) profiler->Add(q);

  EXPECT_EQ(profiler->ItemsSeen(), workload->n());
  const double true_f2 = workload->oracle.ResidualF2(0);
  EXPECT_NEAR(profiler->EstimateF2(), true_f2, 0.25 * true_f2);

  const double true_nk = static_cast<double>(workload->oracle.NthCount(10));
  // n_k estimate is a lower bound but should be in the right ballpark on
  // skewed data (top items are exactly counted by Space-Saving here).
  EXPECT_LE(profiler->EstimateNk(), true_nk * 1.01);
  EXPECT_GE(profiler->EstimateNk(), true_nk * 0.5);
}

TEST(SelfTuningTest, SelfTunedWidthIsSufficientForApproxTop) {
  // Profile the full stream, size the sketch, run the paper's algorithm:
  // the self-tuned sketch must pass the ApproxTop contract.
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 19);
  ASSERT_TRUE(workload.ok());
  const ProfilerParams pp = DefaultParams();
  auto profiler = StreamProfiler::Make(pp);
  ASSERT_TRUE(profiler.ok());
  for (ItemId q : workload->stream) profiler->Add(q);

  auto sizing = profiler->Size(workload->n());
  ASSERT_TRUE(sizing.ok());

  CountSketchParams params;
  params.depth = sizing->depth;
  params.width = sizing->width;
  params.seed = 999;
  auto algo = CountSketchTopK::Make(params, pp.k);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(workload->stream);

  const auto verdict = CheckApproxTop(algo->Candidates(pp.k), workload->oracle,
                                      pp.k, pp.epsilon);
  EXPECT_TRUE(verdict.Pass())
      << "self-tuned b=" << sizing->width << " t=" << sizing->depth;
}

TEST(SelfTuningTest, SelfTunedWidthIsConservativeVsOracle) {
  // Using full F2 instead of F2^{>k} can only widen the sketch.
  auto workload = MakeZipfWorkload(20000, 1.1, 150000, 23);
  ASSERT_TRUE(workload.ok());
  const ProfilerParams pp = DefaultParams();
  auto profiler = StreamProfiler::Make(pp);
  ASSERT_TRUE(profiler.ok());
  for (ItemId q : workload->stream) profiler->Add(q);
  auto tuned = profiler->Size(workload->n());
  ASSERT_TRUE(tuned.ok());

  ApproxTopSpec oracle_spec;
  oracle_spec.stream_length = workload->n();
  oracle_spec.k = pp.k;
  oracle_spec.epsilon = pp.epsilon;
  oracle_spec.delta = pp.delta;
  oracle_spec.residual_f2 = workload->oracle.ResidualF2(pp.k);
  oracle_spec.nk = static_cast<double>(workload->oracle.NthCount(pp.k));
  auto oracle = SizeForApproxTop(oracle_spec);
  ASSERT_TRUE(oracle.ok());

  EXPECT_GE(tuned->width, oracle->width / 2)
      << "tuned width should not undershoot the oracle materially";
}

TEST(SelfTuningTest, PrefixProfilingExtrapolates) {
  // Profile only the first 10% and size for the full stream; the width
  // must still pass ApproxTop (the Zipf shape is stationary).
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 29);
  ASSERT_TRUE(workload.ok());
  const ProfilerParams pp = DefaultParams();
  auto profiler = StreamProfiler::Make(pp);
  ASSERT_TRUE(profiler.ok());
  for (size_t i = 0; i < workload->stream.size() / 10; ++i) {
    profiler->Add(workload->stream[i]);
  }
  auto sizing = profiler->Size(workload->n());
  ASSERT_TRUE(sizing.ok());

  CountSketchParams params;
  params.depth = sizing->depth;
  params.width = sizing->width;
  params.seed = 777;
  auto algo = CountSketchTopK::Make(params, pp.k);
  ASSERT_TRUE(algo.ok());
  algo->AddAll(workload->stream);
  const auto verdict = CheckApproxTop(algo->Candidates(pp.k), workload->oracle,
                                      pp.k, pp.epsilon);
  EXPECT_TRUE(verdict.Pass());
}

TEST(SelfTuningTest, ProfilerIsSmall) {
  auto profiler = StreamProfiler::Make(DefaultParams());
  ASSERT_TRUE(profiler.ok());
  for (ItemId q = 1; q <= 5000; ++q) profiler->Add(q);
  EXPECT_LT(profiler->SpaceBytes(), 200u * 1024u)
      << "the profiler must stay far below the main sketch's footprint";
}

}  // namespace
}  // namespace streamfreq
