#include "core/phi_heavy_hitters.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/workload.h"

namespace streamfreq {
namespace {

TEST(PhiHeavyHittersTest, RejectsBadPhi) {
  EXPECT_TRUE(PhiHeavyHitters::Make(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(PhiHeavyHitters::Make(1.0).status().IsInvalidArgument());
  EXPECT_TRUE(PhiHeavyHitters::Make(-0.1).status().IsInvalidArgument());
  EXPECT_TRUE(PhiHeavyHitters::Make(1e-12).status().IsInvalidArgument());
}

TEST(PhiHeavyHittersTest, EmptyStreamReportsNothing) {
  auto hh = PhiHeavyHitters::Make(0.1);
  ASSERT_TRUE(hh.ok());
  EXPECT_TRUE(hh->Report().empty());
}

TEST(PhiHeavyHittersTest, SimpleMajorityItem) {
  auto hh = PhiHeavyHitters::Make(0.3);
  ASSERT_TRUE(hh.ok());
  for (int i = 0; i < 60; ++i) hh->Add(1);
  for (ItemId q = 100; q < 140; ++q) hh->Add(q);
  const auto report = hh->Report();
  ASSERT_GE(report.size(), 1u);
  EXPECT_EQ(report[0].item, 1u);
  EXPECT_TRUE(report[0].guaranteed);
  EXPECT_GE(report[0].count_upper, 60);
  EXPECT_LE(report[0].count_lower, 60);
}

TEST(PhiHeavyHittersTest, NoFalseNegativesOnZipf) {
  auto workload = MakeZipfWorkload(20000, 1.1, 200000, 7);
  ASSERT_TRUE(workload.ok());
  const double phi = 0.01;
  auto hh = PhiHeavyHitters::Make(phi);
  ASSERT_TRUE(hh.ok());
  for (ItemId q : workload->stream) hh->Add(q);

  std::unordered_set<ItemId> reported;
  for (const PhiHeavyHitter& r : hh->Report()) reported.insert(r.item);
  const double threshold = phi * static_cast<double>(workload->n());
  for (const auto& [item, count] : workload->oracle.counts()) {
    if (static_cast<double>(count) > threshold) {
      ASSERT_TRUE(reported.count(item))
          << "missed phi-heavy item " << item << " (count " << count << ")";
    }
  }
}

TEST(PhiHeavyHittersTest, GuaranteedListHasNoFalsePositives) {
  auto workload = MakeZipfWorkload(20000, 1.0, 200000, 9);
  ASSERT_TRUE(workload.ok());
  const double phi = 0.005;
  auto hh = PhiHeavyHitters::Make(phi);
  ASSERT_TRUE(hh.ok());
  for (ItemId q : workload->stream) hh->Add(q);

  const double threshold = phi * static_cast<double>(workload->n());
  for (const PhiHeavyHitter& r : hh->GuaranteedOnly()) {
    ASSERT_TRUE(r.guaranteed);
    ASSERT_GT(static_cast<double>(workload->oracle.CountOf(r.item)), threshold)
        << "guaranteed item " << r.item << " is not actually phi-heavy";
  }
}

TEST(PhiHeavyHittersTest, ReportedBoundsBracketTruth) {
  auto workload = MakeZipfWorkload(5000, 1.2, 100000, 11);
  ASSERT_TRUE(workload.ok());
  auto hh = PhiHeavyHitters::Make(0.01);
  ASSERT_TRUE(hh.ok());
  for (ItemId q : workload->stream) hh->Add(q);
  for (const PhiHeavyHitter& r : hh->Report()) {
    const Count truth = workload->oracle.CountOf(r.item);
    ASSERT_GE(r.count_upper, truth);
    ASSERT_LE(r.count_lower, truth);
  }
}

TEST(PhiHeavyHittersTest, SpaceScalesInversePhi) {
  auto coarse = PhiHeavyHitters::Make(0.1);
  auto fine = PhiHeavyHitters::Make(0.001);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  for (ItemId q = 1; q <= 100000; ++q) {
    coarse->Add(q % 5000);
    fine->Add(q % 5000);
  }
  EXPECT_LT(coarse->SpaceBytes() * 10, fine->SpaceBytes());
}

}  // namespace
}  // namespace streamfreq
