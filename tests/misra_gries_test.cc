#include "core/misra_gries.h"

#include <gtest/gtest.h>

#include "stream/exact_counter.h"
#include "stream/zipf.h"

namespace streamfreq {
namespace {

TEST(MisraGriesTest, RejectsZeroCapacity) {
  EXPECT_TRUE(MisraGries::Make(0).status().IsInvalidArgument());
}

TEST(MisraGriesTest, ExactWhenDistinctFitsCapacity) {
  auto mg = MisraGries::Make(10);
  ASSERT_TRUE(mg.ok());
  for (int round = 0; round < 5; ++round) {
    for (ItemId q = 1; q <= 10; ++q) mg->Add(q, static_cast<Count>(q));
  }
  for (ItemId q = 1; q <= 10; ++q) {
    EXPECT_EQ(mg->Estimate(q), 5 * static_cast<Count>(q));
  }
  EXPECT_EQ(mg->MaxError(), 0);
}

TEST(MisraGriesTest, EstimatesNeverOverestimate) {
  auto gen = ZipfGenerator::Make(2000, 1.0, 3);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(50000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  auto mg = MisraGries::Make(50);
  ASSERT_TRUE(mg.ok());
  mg->AddAll(stream);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_LE(mg->Estimate(item), count);
  }
}

TEST(MisraGriesTest, UndercountBoundedByNOverCPlusOne) {
  auto gen = ZipfGenerator::Make(2000, 1.2, 5);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(60000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  constexpr size_t kCap = 100;
  auto mg = MisraGries::Make(kCap);
  ASSERT_TRUE(mg.ok());
  mg->AddAll(stream);

  const Count bound =
      static_cast<Count>(stream.size()) / static_cast<Count>(kCap + 1);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_GE(mg->Estimate(item), count - bound)
        << "undercount beyond n/(c+1) for item " << item;
  }
  EXPECT_LE(mg->MaxError(), bound);
}

TEST(MisraGriesTest, HeavyItemsAlwaysMonitored) {
  // Guarantee: every item with n_q > n/(c+1) is in the summary.
  auto gen = ZipfGenerator::Make(2000, 1.2, 7);
  ASSERT_TRUE(gen.ok());
  const Stream stream = gen->Take(60000);
  ExactCounter oracle;
  oracle.AddAll(stream);
  constexpr size_t kCap = 100;
  auto mg = MisraGries::Make(kCap);
  ASSERT_TRUE(mg.ok());
  mg->AddAll(stream);

  const Count threshold =
      static_cast<Count>(stream.size()) / static_cast<Count>(kCap + 1);
  for (const auto& [item, count] : oracle.counts()) {
    if (count > threshold) {
      EXPECT_GT(mg->Estimate(item), 0) << "heavy item evicted";
    }
  }
}

TEST(MisraGriesTest, NeverExceedsCapacity) {
  auto gen = ZipfGenerator::Make(10000, 0.5, 9);
  ASSERT_TRUE(gen.ok());
  auto mg = MisraGries::Make(25);
  ASSERT_TRUE(mg.ok());
  for (int i = 0; i < 20000; ++i) {
    mg->Add(gen->Next());
    ASSERT_LE(mg->Candidates(1000).size(), 25u);
  }
}

TEST(MisraGriesTest, WeightedUpdatesMatchRepeatedUnit) {
  // Weighted arrival semantics: final state equals unit-arrival runs on the
  // same multiset (order fixed: all copies arrive together in both cases).
  auto weighted = MisraGries::Make(3);
  auto unit = MisraGries::Make(3);
  ASSERT_TRUE(weighted.ok() && unit.ok());
  const std::vector<std::pair<ItemId, Count>> arrivals = {
      {1, 5}, {2, 3}, {3, 4}, {4, 6}, {1, 2}, {5, 1}};
  for (const auto& [item, w] : arrivals) {
    weighted->Add(item, w);
    for (Count i = 0; i < w; ++i) unit->Add(item);
  }
  for (ItemId q = 1; q <= 5; ++q) {
    EXPECT_EQ(weighted->Estimate(q), unit->Estimate(q)) << "item " << q;
  }
}

TEST(MisraGriesTest, CandidatesSortedAndTruncated) {
  auto mg = MisraGries::Make(10);
  ASSERT_TRUE(mg.ok());
  mg->Add(1, 5);
  mg->Add(2, 9);
  mg->Add(3, 7);
  const auto top2 = mg->Candidates(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].item, 2u);
  EXPECT_EQ(top2[1].item, 3u);
}

TEST(MisraGriesTest, SingleCounterDegeneratesToMajority) {
  // capacity 1 is the Boyer-Moore majority vote.
  auto mg = MisraGries::Make(1);
  ASSERT_TRUE(mg.ok());
  const Stream stream = {1, 2, 1, 3, 1, 4, 1, 1};
  mg->AddAll(stream);
  const auto c = mg->Candidates(1);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].item, 1u) << "majority element must survive";
}

TEST(MisraGriesTest, NameAndSpace) {
  auto mg = MisraGries::Make(7);
  ASSERT_TRUE(mg.ok());
  EXPECT_EQ(mg->Name(), "MisraGries(c=7)");
  EXPECT_EQ(mg->SpaceBytes(), 0u) << "empty summary holds no entries";
  mg->Add(1);
  EXPECT_GT(mg->SpaceBytes(), 0u);
}

}  // namespace
}  // namespace streamfreq
