#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace streamfreq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());

  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad width");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("broken");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "broken");
  // Copying back over an error with OK clears it.
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
  EXPECT_TRUE(s.IsCorruption()) << "source untouched";
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::IoError("disk");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIoError());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status PropagationDemo(int x) {
  STREAMFREQ_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(PropagationDemo(1).ok());
  EXPECT_TRUE(PropagationDemo(-1).IsInvalidArgument());
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  STREAMFREQ_ASSIGN_OR_RETURN(int half, HalfOf(x));
  STREAMFREQ_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(MacroTest, AssignOrReturnChains) {
  Result<int> r = QuarterOf(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(QuarterOf(6).status().IsInvalidArgument());
}

}  // namespace
}  // namespace streamfreq
